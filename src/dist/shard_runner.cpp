#include "dist/shard_runner.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "fault/fault.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fsio.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define MATADOR_HAS_FORK 1
#endif

namespace fs = std::filesystem;

namespace matador::dist {

namespace {

using util::Json;

/// Wraps a point as the on-disk manifest document: the point itself plus
/// the provenance the merge step validates (grid hash, producing shard).
Json point_manifest_to_json(const core::SweepPoint& p, std::uint64_t grid_hash,
                            const std::string& owner) {
    Json j = core::sweep_point_to_json(p);
    j.set("grid_hash", core::key_hex(grid_hash));
    j.set("shard", owner);
    return j;
}

}  // namespace

util::Json shard_report_to_json(const ShardReport& r) {
    Json j = Json::object();
    j.set("format", "matador-shard-report");
    j.set("version", Json(double(core::kSweepJsonVersion)));
    j.set("owner", r.owner);
    j.set("points_run", Json(double(r.points_run)));
    j.set("points_stolen", Json(double(r.points_stolen)));
    j.set("points_failed", Json(double(r.points_failed)));
    j.set("threads_used", Json(double(r.threads_used)));
    j.set("wall_seconds", Json(r.wall_seconds));
    j.set("store_stats", core::store_stats_to_json(r.store_stats));
    j.set("in_progress", Json(r.in_progress));
    return j;
}

ShardReport shard_report_from_json(const util::Json& j) {
    if (j.at("format").as_string() != "matador-shard-report")
        throw std::runtime_error("shard report: wrong document format");
    ShardReport r;
    r.owner = j.at("owner").as_string();
    r.points_run = std::size_t(j.at("points_run").as_double());
    r.points_stolen = std::size_t(j.at("points_stolen").as_double());
    r.points_failed = std::size_t(j.at("points_failed").as_double());
    r.threads_used = unsigned(j.at("threads_used").as_double());
    r.wall_seconds = j.at("wall_seconds").as_double();
    r.store_stats = core::store_stats_from_json(j.at("store_stats"));
    if (j.contains("in_progress")) r.in_progress = j.at("in_progress").as_bool();
    return r;
}

ShardReport run_shard(const data::Dataset& train, const data::Dataset& test,
                      const std::vector<core::FlowConfig>& grid,
                      const std::string& cache_dir, const std::string& owner,
                      const ShardOptions& options) {
    if (cache_dir.empty())
        throw std::invalid_argument("run_shard: cache_dir must be set");
    if (core::stage_index(options.range.from) >
        core::stage_index(options.range.to))
        throw std::invalid_argument("run_shard: range.from is after range.to");

    auto& recorder = obs::TraceRecorder::instance();
    if (options.export_obs) {
        // A forked shard inherits the parent's recorded events and metric
        // values; start this process's timeline clean.  (Only call with the
        // shard single-threaded, i.e. here, before workers start.)
        recorder.reset();
        obs::MetricsRegistry::global().reset();
        recorder.set_process_name(owner);
        recorder.enable();
    }

    obs::Timer watch;
    // Background heartbeat interval; also feeds the lease-timeout floor
    // below, so it is resolved before the queue opens.
    double heartbeat = options.heartbeat_seconds;
    if (heartbeat <= 0.0)
        heartbeat = std::max(0.05, options.queue.lease_timeout_seconds / 4.0);
    // Floor the effective lease timeout at 2× the heartbeat interval: one
    // missed beat plus clock skew/granularity must never make a LIVING
    // shard's lease stealable (see work_queue.hpp's clock assumptions).
    WorkQueueOptions queue_options = options.queue;
    queue_options.lease_timeout_seconds =
        std::max(queue_options.lease_timeout_seconds, 2.0 * heartbeat);

    const GridManifest manifest = GridManifest::from_grid(grid, train, test);
    WorkQueue queue(cache_dir, manifest, owner, queue_options);
    const auto store = std::make_shared<core::ArtifactStore>(cache_dir);

    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads =
        unsigned(std::min<std::size_t>(threads, std::max<std::size_t>(1, grid.size())));

    std::atomic<std::size_t> run_count{0}, failed_count{0};
    const auto make_report = [&](bool in_progress) {
        ShardReport r;
        r.owner = queue.owner();
        r.points_run = run_count.load();
        r.points_stolen = queue.stolen_count();
        r.points_failed = failed_count.load();
        r.threads_used = threads;
        r.wall_seconds = watch.seconds();
        r.store_stats = store->stats();
        r.in_progress = in_progress;
        return r;
    };

    // Background heartbeat: keep every held lease visibly alive while its
    // point computes (a single point can run far longer than the timeout),
    // and publish an in-progress stats snapshot so `matador sweep-status`
    // on any machine sees live per-shard progress.
    std::mutex stop_mu;
    std::condition_variable stop_cv;
    bool stop = false;
    std::thread heartbeat_thread([&] {
        obs::set_thread_name("heartbeat");
        std::unique_lock<std::mutex> lock(stop_mu);
        while (!stop_cv.wait_for(lock,
                                 std::chrono::duration<double>(heartbeat),
                                 [&] { return stop; })) {
            queue.heartbeat();
            TRACE_INSTANT("heartbeat", "shard");
            try {
                queue.write_owner_stats(
                    shard_report_to_json(make_report(/*in_progress=*/true)));
            } catch (const std::exception&) {
                // Progress snapshots are best-effort; the final report at
                // the end of run_shard is the authoritative write.
            }
        }
    });
    // First fatal worker error (manifest write, queue I/O).  Pipeline
    // errors are NOT fatal - run_sweep_point folds them into the point's
    // diagnostics; this catches the infrastructure failing around it.  The
    // failed point's lease is left to expire so another shard re-runs it.
    std::mutex error_mu;
    std::string fatal_error;
    std::atomic<bool> abort_workers{false};
    const auto worker = [&] {
        while (!abort_workers.load()) {
            try {
                const std::size_t stolen_before = queue.stolen_count();
                const auto index = queue.claim();
                if (!index) {
                    if (queue.drained()) return;
                    // With stealing disabled this shard can never touch the
                    // outstanding leases; draining todo/ is all it can do.
                    if (!options.queue.steal) return;
                    // Other shards hold live leases; wait for them to finish
                    // or for a dead shard's lease to expire.
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(options.poll_seconds));
                    continue;
                }
                if (recorder.enabled()) {
                    util::Json claim_args = util::Json::object();
                    claim_args.set("point", double(*index));
                    claim_args.set("stolen",
                                   queue.stolen_count() > stolen_before);
                    recorder.instant("claim", "shard", std::move(claim_args));
                }
                const core::SweepPoint point = core::run_sweep_point(
                    *index, grid[*index], train, test, options.range, store);
                util::write_file_atomic(
                    point_manifest_path(cache_dir, *index),
                    point_manifest_to_json(point, manifest.grid_hash,
                                           queue.owner())
                            .dump(2) +
                        "\n");
                // Death here leaves a published manifest but no done
                // marker: the lease expires, a thief re-runs the point
                // (cache-hot), and its atomic rewrite is bit-identical.
                fault::FsHooks::instance().crash_point(
                    "shard.result.pre-complete");
                queue.complete(*index);
                run_count.fetch_add(1);
                if (!point.ok) failed_count.fetch_add(1);
                auto& registry = obs::MetricsRegistry::global();
                registry.counter("shard_points_run").add();
                if (!point.ok) registry.counter("shard_points_failed").add();
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (fatal_error.empty()) fatal_error = e.what();
                abort_workers.store(true);
                return;
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (auto& th : pool) th.join();
    }

    {
        std::lock_guard<std::mutex> lock(stop_mu);
        stop = true;
    }
    stop_cv.notify_all();
    heartbeat_thread.join();

    if (!fatal_error.empty())
        throw std::runtime_error("run_shard: " + fatal_error);

    const ShardReport report = make_report(/*in_progress=*/false);
    queue.write_owner_stats(shard_report_to_json(report));

    if (options.export_obs) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("shard_points_stolen").add(report.points_stolen);
        registry.gauge("shard_wall_seconds").set(report.wall_seconds);
        queue.write_owner_file(".metrics.json",
                               registry.to_json().dump(1) + "\n");
        queue.write_owner_file(".trace.json", recorder.to_json().dump(1) + "\n");
    }
    return report;
}

std::vector<int> run_local_shards(const data::Dataset& train,
                                  const data::Dataset& test,
                                  const std::vector<core::FlowConfig>& grid,
                                  const std::string& cache_dir,
                                  unsigned num_shards,
                                  const ShardOptions& options) {
#ifndef MATADOR_HAS_FORK
    (void)train; (void)test; (void)grid; (void)cache_dir; (void)num_shards;
    (void)options;
    throw std::runtime_error(
        "run_local_shards: local shard processes need POSIX fork(); on this "
        "platform start shards manually with 'matador sweep --shard-id'");
#else
    if (num_shards == 0)
        throw std::invalid_argument("run_local_shards: need at least one shard");
    // Fresh epoch: drop the previous queue and its stats, plus stale point
    // manifests (a different grid could alias old indices).
    WorkQueue::reset(cache_dir);
    fs::remove_all(results_dir(cache_dir));
    // Initialize the queue in the parent so every child joins the same
    // epoch deterministically.
    const GridManifest manifest = GridManifest::from_grid(grid, train, test);
    WorkQueue(cache_dir, manifest, "coordinator", options.queue);

    // Children inherit the parent's stdio buffers and flush them on exit;
    // drain them here so piped output is not duplicated per shard.
    std::fflush(nullptr);

    std::vector<pid_t> children;
    children.reserve(num_shards);
    for (unsigned i = 0; i < num_shards; ++i) {
        const pid_t pid = fork();
        if (pid < 0) {
            for (const pid_t child : children) waitpid(child, nullptr, 0);
            throw std::runtime_error("run_local_shards: fork failed");
        }
        if (pid == 0) {
            // Child: run the shard and leave without unwinding the parent's
            // state (atexit handlers, static destructors).
            int code = 0;
            try {
                const std::string owner =
                    "s" + std::to_string(i) + "-" + std::to_string(getpid());
                const ShardReport report =
                    run_shard(train, test, grid, cache_dir, owner, options);
                code = report.points_failed == 0 ? 0 : 1;
            } catch (const std::exception& e) {
                std::fprintf(stderr, "shard %u: %s\n", i, e.what());
                code = 2;
            }
            std::fflush(nullptr);
            _exit(code);
        }
        children.push_back(pid);
    }

    std::vector<int> codes;
    codes.reserve(num_shards);
    for (const pid_t child : children) {
        int status = 0;
        waitpid(child, &status, 0);
        codes.push_back(WIFEXITED(status) ? WEXITSTATUS(status) : 128);
    }
    return codes;
#endif
}

}  // namespace matador::dist
