#include "dist/sweep_status.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "dist/work_queue.hpp"
#include "util/fsio.hpp"

namespace fs = std::filesystem;

namespace matador::dist {

SweepStatus read_sweep_status(const std::string& cache_dir,
                              double lease_timeout_seconds) {
    const fs::path queue = fs::path(cache_dir) / "queue";
    if (!fs::exists(queue / "grid.json"))
        throw std::runtime_error(
            "sweep-status: no sweep queue under " + cache_dir +
            " (expected " + (queue / "grid.json").string() + ")");

    SweepStatus s;
    s.lease_timeout_seconds = lease_timeout_seconds;
    const GridManifest grid = GridManifest::from_json(
        util::Json::parse(util::read_file((queue / "grid.json").string())));
    s.total = grid.size();

    const auto count_indexed = [&](const char* sub) {
        std::size_t n = 0;
        std::error_code ec;
        for (const auto& entry : fs::directory_iterator(queue / sub, ec)) {
            const auto index = parse_queue_index(entry.path().filename().string());
            if (index && *index < s.total) ++n;
        }
        return n;
    };
    s.todo = count_indexed("todo");
    s.done = count_indexed("done");

    {
        std::error_code failed_ec;
        for (const auto& entry :
             fs::directory_iterator(queue / "failed", failed_ec)) {
            const auto index = parse_queue_index(entry.path().filename().string());
            if (index && *index < s.total) s.failed.push_back(*index);
        }
        std::sort(s.failed.begin(), s.failed.end());
    }

    const auto now = fs::file_time_type::clock::now();
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(queue / "leases", ec)) {
        const std::string name = entry.path().filename().string();
        const auto index = parse_queue_index(name);
        if (!index || *index >= s.total) continue;
        LeaseStatus lease;
        lease.index = *index;
        lease.owner = parse_lease_owner(name);
        std::error_code mtime_ec;
        const auto mtime = fs::last_write_time(entry.path(), mtime_ec);
        if (mtime_ec) continue;  // vanished mid-scan (completed or stolen)
        lease.heartbeat_age_seconds =
            std::chrono::duration<double>(now - mtime).count();
        lease.stale = lease.heartbeat_age_seconds > lease_timeout_seconds;
        s.leases.push_back(std::move(lease));
    }
    std::sort(s.leases.begin(), s.leases.end(),
              [](const LeaseStatus& a, const LeaseStatus& b) {
                  return a.index < b.index;
              });
    s.leased = s.leases.size();

    std::vector<fs::path> stats_files;
    for (const auto& entry : fs::directory_iterator(queue / "stats", ec))
        if (entry.path().extension() == ".json")
            stats_files.push_back(entry.path());
    std::sort(stats_files.begin(), stats_files.end());
    for (const auto& path : stats_files) {
        try {
            s.shards.push_back(shard_report_from_json(
                util::Json::parse(util::read_file(path.string()))));
        } catch (const std::exception&) {
            // Corrupt or mid-write stats only affect the progress view,
            // never the sweep itself; skip.
        }
    }
    return s;
}

std::string format_sweep_status(const SweepStatus& s) {
    std::ostringstream out;
    char line[160];
    std::snprintf(line, sizeof line,
                  "sweep: %zu points  todo=%zu leased=%zu done=%zu failed=%zu "
                  "(%.0f%%)\n",
                  s.total, s.todo, s.leased, s.done, s.failed.size(),
                  s.total ? 100.0 * double(s.done) / double(s.total) : 0.0);
    out << line;

    if (!s.failed.empty()) {
        out << "failed (retry budget exhausted):\n";
        for (const std::size_t index : s.failed) {
            std::snprintf(line, sizeof line,
                          "  point %zu  gave up after repeated lease "
                          "expiries; fix the config or machine and re-queue "
                          "with a fresh sweep epoch\n",
                          index);
            out << line;
        }
    }

    if (!s.leases.empty()) {
        out << "leases:\n";
        for (const auto& l : s.leases) {
            std::snprintf(line, sizeof line,
                          "  point %zu  owner %s  heartbeat %.1fs ago%s\n",
                          l.index, l.owner.c_str(), l.heartbeat_age_seconds,
                          l.stale ? "  STALE" : "");
            out << line;
        }
        if (s.stale_leases() > 0) {
            std::snprintf(line, sizeof line,
                          "warning: %zu lease(s) past the %.0fs timeout - "
                          "owner presumed dead; surviving shards will steal "
                          "and re-run those points\n",
                          s.stale_leases(), s.lease_timeout_seconds);
            out << line;
        }
    }

    if (!s.shards.empty()) {
        out << "shards:\n";
        for (const auto& sh : s.shards) {
            std::snprintf(line, sizeof line,
                          "  %-24s %zu points (%zu stolen, %zu failed), "
                          "%.2f s%s\n",
                          sh.owner.c_str(), sh.points_run, sh.points_stolen,
                          sh.points_failed, sh.wall_seconds,
                          sh.in_progress ? "  [running]" : "");
            out << line;
        }
    }

    if (s.all_done())
        out << "sweep complete; merge with: matador sweep-merge --cache-dir "
               "<cache_dir>\n";
    else if (s.complete())
        out << "sweep terminated with failures; sweep-merge will report the "
               "failed points as missing\n";
    return out.str();
}

}  // namespace matador::dist
