#include "lint/aig_lint.hpp"

#include <algorithm>

namespace matador::lint {

void lint_aig(const logic::Aig& aig, const std::string& where,
              std::vector<Finding>& findings, AigLintStats* stats) {
    // Reachability from the POs.
    std::vector<bool> reach(aig.num_nodes(), false);
    std::vector<std::uint32_t> stack;
    for (std::size_t i = 0; i < aig.num_pos(); ++i)
        stack.push_back(logic::lit_node(aig.po(i)));
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (n == 0 || reach[n]) continue;
        reach[n] = true;
        if (aig.is_and(n)) {
            stack.push_back(logic::lit_node(aig.node_fanin0(n)));
            stack.push_back(logic::lit_node(aig.node_fanin1(n)));
        }
    }

    std::size_t dead = 0, unused_pis = 0;
    for (std::uint32_t n = 1; n < aig.num_nodes(); ++n) {
        if (aig.is_and(n) && !reach[n]) ++dead;
        if (aig.is_pi(n) && !reach[n]) ++unused_pis;
    }
    if (dead > 0)
        // Strash rewrites strand intermediate cones; a synthesis tool sweeps
        // them.  Only worth a note unless the whole graph is dead.
        findings.push_back({check::kAigDeadNode,
                            dead == aig.num_ands() && dead > 0
                                ? Severity::kWarning
                                : Severity::kInfo,
                            where, std::to_string(dead) + " node(s)",
                            "AND node(s) unreachable from any output"});

    for (std::size_t i = 0; i < aig.num_pos(); ++i) {
        const logic::Lit po = aig.po(i);
        if (po == logic::kConst0 || po == logic::kConst1)
            findings.push_back({check::kAigConstOutput, Severity::kWarning,
                                where, "po " + std::to_string(i),
                                std::string("output is constant ") +
                                    (po == logic::kConst1 ? "1" : "0")});
    }

    if (stats) {
        stats->aigs += 1;
        stats->pis += aig.num_pis();
        stats->pos += aig.num_pos();
        stats->ands += aig.num_ands();
        stats->dead_ands += dead;
        stats->unused_pis += unused_pis;
        stats->max_depth = std::max<std::size_t>(stats->max_depth, aig.depth());
        const auto fanouts = aig.fanout_counts();
        const auto max_it = std::max_element(fanouts.begin(), fanouts.end());
        if (max_it != fanouts.end())
            stats->max_fanout = std::max<std::size_t>(stats->max_fanout, *max_it);
    }
}

}  // namespace matador::lint
