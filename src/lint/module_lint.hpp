// AST-level lint of generated Verilog modules.
//
// Works on the rtl::Module AST (not text), so it sees exactly what the
// writer will emit: port/net declarations, continuous assigns, always
// blocks, and instances.  Checks: undriven and multiply-driven nets
// (per-bit driver counting), unused nets, out-of-range bit selects,
// port/assignment width mismatches, combinational cycles (Tarjan SCC over
// the signal graph, crossing into instances of purely combinational
// modules), dead logic (driven nets whose cone never reaches an output,
// register, or instance), and constant logic (nets that fold to a constant
// under constant propagation without being declared as one).
#pragma once

#include <cstddef>
#include <vector>

#include "lint/finding.hpp"
#include "rtl/verilog_ast.hpp"

namespace matador::lint {

/// Structural counts over the analyzed modules.
struct ModuleLintStats {
    std::size_t modules = 0;
    std::size_t ports = 0;
    std::size_t nets = 0;
    std::size_t assigns = 0;
    std::size_t always_blocks = 0;
    std::size_t instances = 0;
};

/// Lint one module.  `scope` supplies the sibling module definitions of
/// the design so instance connections can be checked against real port
/// directions and widths (an instance of a module outside `scope` is
/// reported under check::kUnknownModule and treated conservatively).
void lint_module(const rtl::Module& mod,
                 const std::vector<const rtl::Module*>& scope,
                 std::vector<Finding>& findings,
                 ModuleLintStats* stats = nullptr);

}  // namespace matador::lint
