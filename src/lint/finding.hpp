// Lint finding model: stable check ids, severities, source locations.
//
// Check ids are part of the tool's contract (tests, CI gates, and JSON
// consumers match on them) - never rename one, only add.
#pragma once

#include <optional>
#include <string>

namespace matador::lint {

enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

const char* severity_name(Severity s);
std::optional<Severity> severity_from_name(const std::string& name);

/// The check catalog.  Each lint rule reports under exactly one id.
namespace check {
// RTL module (AST) level.
inline constexpr const char* kUnknownNet = "unknown-net";
inline constexpr const char* kUnknownModule = "unknown-module";
inline constexpr const char* kBitRange = "bit-out-of-range";
inline constexpr const char* kUndriven = "net-undriven";
inline constexpr const char* kMultiDriven = "net-multidriven";
inline constexpr const char* kCombCycle = "comb-cycle";
inline constexpr const char* kWidthMismatch = "width-mismatch";
inline constexpr const char* kUnused = "net-unused";
inline constexpr const char* kDeadLogic = "dead-logic";
inline constexpr const char* kConstLogic = "const-logic";
// AIG level.
inline constexpr const char* kAigDeadNode = "aig-dead-node";
inline constexpr const char* kAigConstOutput = "aig-const-output";
// Mapped LUT network level.
inline constexpr const char* kLutBadInput = "lut-bad-input";
inline constexpr const char* kLutDead = "lut-dead";
inline constexpr const char* kLutConst = "lut-const";
inline constexpr const char* kLutDuplicate = "lut-duplicate";
// Ternary 0/1/X pass.
inline constexpr const char* kXSensitive = "x-sensitive";
// Standalone-file lint.
inline constexpr const char* kParseError = "parse-error";
}  // namespace check

/// One diagnostic: which rule fired, how bad, where, and why.
struct Finding {
    std::string check;     ///< stable check id (check::k*)
    Severity severity = Severity::kWarning;
    std::string where;     ///< container ("module matador_top", "hcb 3 aig")
    std::string object;    ///< offending object (net/node/output name)
    std::string message;   ///< human explanation

    bool operator==(const Finding&) const = default;
};

}  // namespace matador::lint
