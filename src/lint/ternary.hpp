// Ternary (0/1/X) abstract simulation over the logic IRs.
//
// Each signal carries one of {0, 1, X} per lane, 64 lanes per word: a lane
// is X when its `unknown` bit is set, otherwise its `value` bit holds the
// definite 0/1.  X models "don't-know / don't-care"; the abstraction is
// sound (a definite output is correct for every completion of the X
// inputs) but pessimistic (an X output may still be insensitive in the
// concrete domain).  This is the voiraig-style X-valued simulation the
// ROADMAP's formal-verification tier starts from: the lint pass uses it to
// prove that an HCB output cannot observe the feature bits its clause
// never included.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/aig.hpp"
#include "logic/lut_network.hpp"

namespace matador::lint {

/// 64 ternary lanes.  Invariant: value & unknown == 0 (an X lane carries
/// value 0), so equal words mean equal ternary vectors.
struct TernaryWord {
    std::uint64_t value = 0;
    std::uint64_t unknown = 0;

    bool operator==(const TernaryWord&) const = default;
};

/// All 64 lanes X.
inline TernaryWord ternary_x() { return {0, ~std::uint64_t(0)}; }
/// All 64 lanes the definite bit pattern `v`.
inline TernaryWord ternary_const(std::uint64_t v) { return {v, 0}; }

/// NOT: X stays X, definite lanes flip.
inline TernaryWord ternary_not(TernaryWord a) {
    return {~a.value & ~a.unknown, a.unknown};
}

/// AND: a definite 0 on either side forces 0 (X-masking); otherwise any X
/// operand makes the result X.
inline TernaryWord ternary_and(TernaryWord a, TernaryWord b) {
    const std::uint64_t def0 =
        (~a.value & ~a.unknown) | (~b.value & ~b.unknown);
    TernaryWord r;
    r.unknown = (a.unknown | b.unknown) & ~def0;
    r.value = a.value & b.value;
    return r;
}

/// Evaluate the AIG for 64 parallel ternary input assignments
/// (`pi_values[i]` holds the lanes of PI i); returns one word per PO.
std::vector<TernaryWord> ternary_simulate(
    const logic::Aig& aig, const std::vector<TernaryWord>& pi_values);

/// Evaluate a mapped LUT network on ternary inputs.  A LUT output lane is
/// definite when every completion of its X inputs lands on the same truth
/// bit (full X-masking through the truth table, not just per-gate).
std::vector<TernaryWord> ternary_evaluate(
    const logic::LutNetwork& net, const std::vector<TernaryWord>& pi_values);

/// Structural support of one PO: pi_in_cone[i] is true when PI i is
/// reachable backward from the PO's cone.
std::vector<bool> po_support(const logic::Aig& aig, std::size_t po);

/// Verdict of the X-insensitivity check for one PO.
struct XCheckResult {
    /// No don't-care PI appears in the PO's structural cone - a complete
    /// proof of insensitivity (the strongest verdict).
    bool proved_structural = false;
    /// Every cared-input assignment was ternary-simulated (2^cared small
    /// enough) with X on the don't-cares, and the PO stayed definite.
    bool proved_exhaustive = false;
    /// Lanes simulated and lanes where the PO evaluated to X.  Any X lane
    /// is a hard failure: the output observed a don't-care input.
    std::size_t lanes_checked = 0;
    std::size_t x_lanes = 0;

    bool proved() const { return proved_structural || proved_exhaustive; }
    bool failed() const { return x_lanes != 0; }
};

/// Prove (or refute) that PO `po` is insensitive to every PI whose
/// `care[i]` is false.  Don't-care PIs are held at X; cared PIs sweep
/// exhaustively when 2^|care| <= 4096, otherwise `random_rounds` 64-lane
/// random sweeps seeded by `seed`.
XCheckResult check_x_insensitive(const logic::Aig& aig, std::size_t po,
                                 const std::vector<bool>& care,
                                 std::size_t random_rounds, std::uint64_t seed);

}  // namespace matador::lint
