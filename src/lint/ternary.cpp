#include "lint/ternary.hpp"

#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace matador::lint {

namespace {

TernaryWord lit_value(const std::vector<TernaryWord>& nodes, logic::Lit l) {
    const TernaryWord v = nodes[logic::lit_node(l)];
    return logic::lit_complement(l) ? ternary_not(v) : v;
}

}  // namespace

std::vector<TernaryWord> ternary_simulate(
    const logic::Aig& aig, const std::vector<TernaryWord>& pi_values) {
    if (pi_values.size() != aig.num_pis())
        throw std::invalid_argument("ternary_simulate: PI count mismatch");
    std::vector<TernaryWord> nodes(aig.num_nodes());
    nodes[0] = ternary_const(0);
    for (std::size_t i = 0; i < aig.num_pis(); ++i)
        nodes[logic::lit_node(aig.pi(i))] = pi_values[i];
    for (std::uint32_t n = 1; n < aig.num_nodes(); ++n) {
        if (!aig.is_and(n)) continue;
        nodes[n] = ternary_and(lit_value(nodes, aig.node_fanin0(n)),
                               lit_value(nodes, aig.node_fanin1(n)));
    }
    std::vector<TernaryWord> pos;
    pos.reserve(aig.num_pos());
    for (std::size_t i = 0; i < aig.num_pos(); ++i)
        pos.push_back(lit_value(nodes, aig.po(i)));
    return pos;
}

std::vector<TernaryWord> ternary_evaluate(
    const logic::LutNetwork& net, const std::vector<TernaryWord>& pi_values) {
    if (pi_values.size() != net.num_pis())
        throw std::invalid_argument("ternary_evaluate: PI count mismatch");
    // Node id space: 0 = const0, 1..num_pis = PIs, then LUTs.
    std::vector<TernaryWord> nodes(1 + net.num_pis() + net.num_luts());
    nodes[0] = ternary_const(0);
    for (std::size_t i = 0; i < net.num_pis(); ++i)
        nodes[net.pi_id(i)] = pi_values[i];
    for (std::size_t i = 0; i < net.num_luts(); ++i) {
        const auto& lut = net.lut(i);
        // A lane's output can be 0 (1) when some completion of its X inputs
        // selects a 0 (1) truth bit; definite iff only one side is
        // reachable.  2^k completions, k <= 6.
        std::uint64_t can0 = 0, can1 = 0;
        const std::size_t k = lut.inputs.size();
        for (std::uint64_t c = 0; c < (std::uint64_t(1) << k); ++c) {
            std::uint64_t match = ~std::uint64_t(0);
            for (std::size_t j = 0; j < k; ++j) {
                const TernaryWord in = nodes[lut.inputs[j]];
                const std::uint64_t want_one = (c >> j) & 1
                                                   ? in.value
                                                   : ~in.value & ~in.unknown;
                match &= in.unknown | want_one;
            }
            if ((lut.truth >> c) & 1)
                can1 |= match;
            else
                can0 |= match;
        }
        nodes[net.lut_id(i)] = {can1 & ~can0, can0 & can1};
    }
    std::vector<TernaryWord> out;
    out.reserve(net.num_outputs());
    for (std::size_t i = 0; i < net.num_outputs(); ++i) {
        const std::uint32_t lit = net.output(i);
        const TernaryWord v = nodes[lit >> 1];
        out.push_back(lit & 1 ? ternary_not(v) : v);
    }
    return out;
}

std::vector<bool> po_support(const logic::Aig& aig, std::size_t po) {
    std::vector<bool> support(aig.num_pis(), false);
    std::vector<bool> seen(aig.num_nodes(), false);
    std::vector<std::uint32_t> stack{logic::lit_node(aig.po(po))};
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (n == 0 || seen[n]) continue;
        seen[n] = true;
        if (aig.is_pi(n)) {
            support[aig.pi_index(n)] = true;
        } else {
            stack.push_back(logic::lit_node(aig.node_fanin0(n)));
            stack.push_back(logic::lit_node(aig.node_fanin1(n)));
        }
    }
    return support;
}

XCheckResult check_x_insensitive(const logic::Aig& aig, std::size_t po,
                                 const std::vector<bool>& care,
                                 std::size_t random_rounds, std::uint64_t seed) {
    if (care.size() != aig.num_pis())
        throw std::invalid_argument("check_x_insensitive: care mask size");
    XCheckResult r;

    const auto support = po_support(aig, po);
    r.proved_structural = true;
    for (std::size_t i = 0; i < care.size(); ++i)
        if (support[i] && !care[i]) r.proved_structural = false;

    std::vector<std::size_t> cared;
    for (std::size_t i = 0; i < care.size(); ++i)
        if (care[i]) cared.push_back(i);

    // Exhaustive when the cared cube is small (<= 4096 assignments = 64
    // sweeps); random 64-lane sweeps otherwise.
    const bool exhaustive = cared.size() <= 12;
    util::Xoshiro256ss rng(seed);
    const std::size_t sweeps =
        exhaustive
            ? ((std::size_t(1) << cared.size()) + 63) / 64
            : random_rounds;
    std::vector<TernaryWord> pis(aig.num_pis(), ternary_x());
    bool x_seen = false;
    for (std::size_t s = 0; s < sweeps; ++s) {
        std::uint64_t valid = ~std::uint64_t(0);
        for (std::size_t j = 0; j < cared.size(); ++j) {
            std::uint64_t pattern;
            if (exhaustive) {
                if (j < 6) {
                    // Lanes enumerate the low 6 cared bits.
                    static constexpr std::uint64_t kLanePatterns[6] = {
                        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
                        0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
                        0xffff0000ffff0000ull, 0xffffffff00000000ull};
                    pattern = kLanePatterns[j];
                } else {
                    // Sweeps enumerate the rest.
                    pattern = (s >> (j - 6)) & 1 ? ~std::uint64_t(0) : 0;
                }
            } else {
                pattern = rng();
            }
            pis[cared[j]] = ternary_const(pattern);
        }
        if (exhaustive && cared.size() < 6)
            valid = (std::uint64_t(1) << (std::uint64_t(1) << cared.size())) - 1;
        const auto out = ternary_simulate(aig, pis);
        const std::uint64_t x = out[po].unknown & valid;
        r.lanes_checked += std::popcount(valid);
        r.x_lanes += std::popcount(x);
        x_seen = x_seen || x != 0;
    }
    r.proved_exhaustive = exhaustive && !x_seen;
    return r;
}

}  // namespace matador::lint
