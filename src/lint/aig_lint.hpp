// Structural lint of an And-Inverter Graph.
//
// Checks: dead AND nodes (allocated but unreachable from any PO - expected
// under strash where cone rewrites strand intermediates, so severity is
// info), constant POs (a clause that folded to 0/1 at build time), and
// unused PIs.  Also collects the structural stats (depth, max fanout,
// literal counts) the report exposes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "logic/aig.hpp"

namespace matador::lint {

/// Structural counts aggregated over the analyzed AIGs.
struct AigLintStats {
    std::size_t aigs = 0;
    std::size_t pis = 0;
    std::size_t pos = 0;
    std::size_t ands = 0;
    std::size_t dead_ands = 0;
    std::size_t unused_pis = 0;
    std::size_t max_depth = 0;
    std::size_t max_fanout = 0;
};

/// Lint one AIG.  `where` labels the findings ("hcb 3 aig").
void lint_aig(const logic::Aig& aig, const std::string& where,
              std::vector<Finding>& findings, AigLintStats* stats = nullptr);

}  // namespace matador::lint
