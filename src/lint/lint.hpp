// Netlist static analysis: the level-0 rung of the verify ladder.
//
// The random-simulation ladder (verification.hpp levels 1-2 and the
// system-level streaming check) can only refute what its sampled vectors
// exercise.  The lint pass makes *structural* guarantees before any vector
// runs: no combinational cycles, no undriven or multiply-driven nets, no
// width mismatches, no dead or constant logic, and - via ternary 0/1/X
// simulation (ternary.hpp) - no HCB output that can observe a feature bit
// its clause never included.
//
// Findings carry a stable check id (check::k*), a severity, and a source
// location, aggregate into a LintReport with structural stats, and
// serialize through util::Json.  The pipeline runs lint_design between
// generate and verify, caches the report in the ArtifactStore under the
// same backend hash as the netlists, and fails the verify stage on any
// error-severity finding; `matador lint` exposes the same pass on the
// command line with a configurable --fail-on threshold.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lint/aig_lint.hpp"
#include "lint/lut_lint.hpp"
#include "lint/module_lint.hpp"
#include "model/trained_model.hpp"
#include "rtl/generators.hpp"
#include "util/json.hpp"

namespace matador::lint {

/// Version of the lint subsystem's semantics (checks + ternary pass).
/// Folded into the lint cache key so checker changes invalidate cached
/// verdicts; bump on any change that could alter a finding or stat.
inline constexpr unsigned kLintSubsystemVersion = 1;

/// Aggregated structural statistics over everything a lint run analyzed.
struct LintStats {
    ModuleLintStats modules;
    AigLintStats aig;
    LutLintStats luts;
    /// Ternary X-insensitivity pass (HCB outputs).
    std::size_t x_outputs_checked = 0;
    std::size_t x_proved_structural = 0;
    std::size_t x_proved_exhaustive = 0;
    std::size_t x_lanes_simulated = 0;
};

/// A full lint run: findings plus the stats of what was analyzed.
struct LintReport {
    std::vector<Finding> findings;
    LintStats stats;

    std::size_t count(Severity s) const;
    std::size_t errors() const { return count(Severity::kError); }
    std::size_t warnings() const { return count(Severity::kWarning); }
    /// True when no finding is at or above `fail_on`.
    bool clean(Severity fail_on = Severity::kError) const;
    /// One-line summary ("2 errors, 1 warning, 3 info") for stage records.
    std::string summary() const;
};

/// Knobs of a lint run.
struct LintOptions {
    /// Random 64-lane ternary sweeps per HCB output when the cared cube is
    /// too large to exhaust (see check_x_insensitive).
    std::size_t ternary_rounds = 2;
    std::uint64_t seed = 0x11d5;
    /// Run the ternary X-insensitivity pass (needs the trained model for
    /// the per-clause care masks).
    bool check_x_sensitivity = true;
    /// Map each HCB AIG to LUTs and lint the mapped network.  Matches the
    /// generate stage: mapping is skipped for DON'T_TOUCH (strash = false)
    /// designs, where every AND instantiates as its own LUT.
    bool map_luts = true;
};

/// Lint a complete generated design: every RTL module (AST level), every
/// HCB AIG, the mapped LUT networks, and - when `m` is given - the ternary
/// X-insensitivity proof of every HCB output against its clause's include
/// mask.  Deterministic for a given design/options.
LintReport lint_design(const rtl::RtlDesign& design,
                       const model::TrainedModel* m,
                       const LintOptions& options = {});

// -- serialization / formatting ---------------------------------------------

/// JSON form: {"format": "matador-lint-report", "version": 1, findings: [
/// {check, severity, where, object, message}], stats: {...}}.  Exact
/// round-trip through lint_report_from_json.
util::Json lint_report_to_json(const LintReport& r);
/// Strict parse; throws std::runtime_error on malformed or future-version
/// documents.
LintReport lint_report_from_json(const util::Json& j);

/// Human-readable report: one "severity [check] where: message" line per
/// finding plus the stats block and the summary line.
std::string format_lint_report(const LintReport& r);

}  // namespace matador::lint
