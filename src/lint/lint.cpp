#include "lint/lint.hpp"

#include <algorithm>
#include <stdexcept>

#include "lint/ternary.hpp"
#include "logic/lut_mapper.hpp"

namespace matador::lint {

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::kInfo: return "info";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "?";
}

std::optional<Severity> severity_from_name(const std::string& name) {
    if (name == "info") return Severity::kInfo;
    if (name == "warning") return Severity::kWarning;
    if (name == "error") return Severity::kError;
    return std::nullopt;
}

std::size_t LintReport::count(Severity s) const {
    return std::size_t(std::count_if(
        findings.begin(), findings.end(),
        [s](const Finding& f) { return f.severity == s; }));
}

bool LintReport::clean(Severity fail_on) const {
    return std::none_of(findings.begin(), findings.end(), [&](const Finding& f) {
        return int(f.severity) >= int(fail_on);
    });
}

std::string LintReport::summary() const {
    const auto part = [](std::size_t n, const char* noun) {
        return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
    };
    return part(errors(), "error") + ", " + part(warnings(), "warning") +
           ", " + std::to_string(count(Severity::kInfo)) + " info";
}

namespace {

/// Care mask of one HCB output: the packet bits its clause includes plus
/// its own chain input.  Everything else is a don't-care the output must
/// provably ignore.
std::vector<bool> hcb_output_care(const rtl::HcbNetlist& hcb, std::size_t out,
                                  const model::TrainedModel& m) {
    const auto& spec = hcb.spec;
    std::vector<bool> care(hcb.aig.num_pis(), false);
    const std::uint32_t cid = spec.active_clauses[out];
    const auto& clause = m.clause(cid / m.clauses_per_class(),
                                  cid % m.clauses_per_class());
    for (std::size_t f = spec.lo; f < spec.hi; ++f)
        if (clause.include_pos.get(f) || clause.include_neg.get(f))
            care[f - spec.lo] = true;
    if (spec.has_chain_input[out]) {
        // Chain PIs follow the packet bits, one per chained active clause
        // in order.
        std::size_t chain_pi = spec.hi - spec.lo;
        for (std::size_t i = 0; i < out; ++i)
            if (spec.has_chain_input[i]) ++chain_pi;
        if (chain_pi < care.size()) care[chain_pi] = true;
    }
    return care;
}

void lint_hcb_x_sensitivity(const rtl::HcbNetlist& hcb, std::size_t index,
                            const model::TrainedModel& m,
                            const LintOptions& options, LintReport& report) {
    const std::string where = "hcb " + std::to_string(index) + " aig";
    for (std::size_t out = 0; out < hcb.aig.num_pos(); ++out) {
        const auto care = hcb_output_care(hcb, out, m);
        const auto r = check_x_insensitive(hcb.aig, out, care,
                                           options.ternary_rounds,
                                           options.seed + index * 1315423911u);
        report.stats.x_outputs_checked += 1;
        report.stats.x_lanes_simulated += r.lanes_checked;
        if (r.proved_structural) report.stats.x_proved_structural += 1;
        if (r.proved_exhaustive) report.stats.x_proved_exhaustive += 1;
        const std::string object =
            "po " + std::to_string(out) + " (clause " +
            std::to_string(hcb.spec.active_clauses[out]) + ")";
        if (r.failed()) {
            report.findings.push_back(
                {check::kXSensitive, Severity::kError, where, object,
                 "output observed a don't-care input in " +
                     std::to_string(r.x_lanes) + " of " +
                     std::to_string(r.lanes_checked) + " ternary lanes"});
        } else if (!r.proved()) {
            // Structural leak but no X surfaced: either a false alarm of
            // the pessimistic abstraction or an unexercised path - worth a
            // warning, not a failure.
            report.findings.push_back(
                {check::kXSensitive, Severity::kWarning, where, object,
                 "cone reaches a don't-care input; " +
                     std::to_string(r.lanes_checked) +
                     " sampled ternary lanes stayed definite but the check "
                     "is not a proof"});
        }
    }
}

}  // namespace

LintReport lint_design(const rtl::RtlDesign& design,
                       const model::TrainedModel* m,
                       const LintOptions& options) {
    LintReport report;

    // Module scope: every module of the design, so instance connections
    // resolve to real port declarations.
    std::vector<const rtl::Module*> scope;
    for (const auto& mod : design.hcb_comb) scope.push_back(&mod);
    for (const auto& mod : design.hcb_seq) scope.push_back(&mod);
    scope.push_back(&design.class_sum);
    scope.push_back(&design.argmax);
    scope.push_back(&design.controller);
    scope.push_back(&design.top);

    for (const rtl::Module* mod : scope)
        lint_module(*mod, scope, report.findings, &report.stats.modules);

    for (std::size_t i = 0; i < design.hcbs.size(); ++i) {
        const auto& hcb = design.hcbs[i];
        lint_aig(hcb.aig, "hcb " + std::to_string(i) + " aig",
                 report.findings, &report.stats.aig);
        if (options.map_luts && hcb.aig.strash_enabled()) {
            const auto mapped = logic::map_to_luts(hcb.aig);
            lint_lut_network(mapped.network,
                             "hcb " + std::to_string(i) + " luts",
                             report.findings, &report.stats.luts);
        }
        if (options.check_x_sensitivity && m)
            lint_hcb_x_sensitivity(hcb, i, *m, options, report);
    }
    return report;
}

// -- serialization -----------------------------------------------------------

namespace {
constexpr const char* kFormat = "matador-lint-report";
constexpr int kVersion = 1;

util::Json num(std::size_t v) { return util::Json(double(v)); }
std::size_t as_size(const util::Json& j) { return std::size_t(j.as_double()); }
}  // namespace

util::Json lint_report_to_json(const LintReport& r) {
    util::Json j = util::Json::object();
    j.set("format", kFormat);
    j.set("version", double(kVersion));
    util::Json findings = util::Json::array();
    for (const auto& f : r.findings) {
        util::Json fj = util::Json::object();
        fj.set("check", f.check);
        fj.set("severity", severity_name(f.severity));
        fj.set("where", f.where);
        fj.set("object", f.object);
        fj.set("message", f.message);
        findings.push_back(std::move(fj));
    }
    j.set("findings", std::move(findings));

    util::Json stats = util::Json::object();
    util::Json modules = util::Json::object();
    modules.set("modules", num(r.stats.modules.modules));
    modules.set("ports", num(r.stats.modules.ports));
    modules.set("nets", num(r.stats.modules.nets));
    modules.set("assigns", num(r.stats.modules.assigns));
    modules.set("always_blocks", num(r.stats.modules.always_blocks));
    modules.set("instances", num(r.stats.modules.instances));
    stats.set("modules", std::move(modules));

    util::Json aig = util::Json::object();
    aig.set("aigs", num(r.stats.aig.aigs));
    aig.set("pis", num(r.stats.aig.pis));
    aig.set("pos", num(r.stats.aig.pos));
    aig.set("ands", num(r.stats.aig.ands));
    aig.set("dead_ands", num(r.stats.aig.dead_ands));
    aig.set("unused_pis", num(r.stats.aig.unused_pis));
    aig.set("max_depth", num(r.stats.aig.max_depth));
    aig.set("max_fanout", num(r.stats.aig.max_fanout));
    stats.set("aig", std::move(aig));

    util::Json luts = util::Json::object();
    luts.set("networks", num(r.stats.luts.networks));
    luts.set("luts", num(r.stats.luts.luts));
    luts.set("dead_luts", num(r.stats.luts.dead_luts));
    luts.set("const_luts", num(r.stats.luts.const_luts));
    luts.set("duplicate_luts", num(r.stats.luts.duplicate_luts));
    luts.set("max_depth", num(r.stats.luts.max_depth));
    luts.set("max_fanout", num(r.stats.luts.max_fanout));
    stats.set("luts", std::move(luts));

    util::Json ternary = util::Json::object();
    ternary.set("outputs_checked", num(r.stats.x_outputs_checked));
    ternary.set("proved_structural", num(r.stats.x_proved_structural));
    ternary.set("proved_exhaustive", num(r.stats.x_proved_exhaustive));
    ternary.set("lanes_simulated", num(r.stats.x_lanes_simulated));
    stats.set("ternary", std::move(ternary));

    j.set("stats", std::move(stats));
    return j;
}

LintReport lint_report_from_json(const util::Json& j) {
    if (!j.is_object() || !j.contains("format") ||
        j.at("format").as_string() != kFormat)
        throw std::runtime_error("lint report: unrecognized format");
    if (int(j.at("version").as_double()) != kVersion)
        throw std::runtime_error("lint report: unsupported version " +
                                 std::to_string(int(j.at("version").as_double())));
    LintReport r;
    for (const auto& fj : j.at("findings").as_array()) {
        Finding f;
        f.check = fj.at("check").as_string();
        const auto sev = severity_from_name(fj.at("severity").as_string());
        if (!sev)
            throw std::runtime_error("lint report: unknown severity '" +
                                     fj.at("severity").as_string() + "'");
        f.severity = *sev;
        f.where = fj.at("where").as_string();
        f.object = fj.at("object").as_string();
        f.message = fj.at("message").as_string();
        r.findings.push_back(std::move(f));
    }
    const auto& stats = j.at("stats");
    const auto& modules = stats.at("modules");
    r.stats.modules.modules = as_size(modules.at("modules"));
    r.stats.modules.ports = as_size(modules.at("ports"));
    r.stats.modules.nets = as_size(modules.at("nets"));
    r.stats.modules.assigns = as_size(modules.at("assigns"));
    r.stats.modules.always_blocks = as_size(modules.at("always_blocks"));
    r.stats.modules.instances = as_size(modules.at("instances"));
    const auto& aig = stats.at("aig");
    r.stats.aig.aigs = as_size(aig.at("aigs"));
    r.stats.aig.pis = as_size(aig.at("pis"));
    r.stats.aig.pos = as_size(aig.at("pos"));
    r.stats.aig.ands = as_size(aig.at("ands"));
    r.stats.aig.dead_ands = as_size(aig.at("dead_ands"));
    r.stats.aig.unused_pis = as_size(aig.at("unused_pis"));
    r.stats.aig.max_depth = as_size(aig.at("max_depth"));
    r.stats.aig.max_fanout = as_size(aig.at("max_fanout"));
    const auto& luts = stats.at("luts");
    r.stats.luts.networks = as_size(luts.at("networks"));
    r.stats.luts.luts = as_size(luts.at("luts"));
    r.stats.luts.dead_luts = as_size(luts.at("dead_luts"));
    r.stats.luts.const_luts = as_size(luts.at("const_luts"));
    r.stats.luts.duplicate_luts = as_size(luts.at("duplicate_luts"));
    r.stats.luts.max_depth = as_size(luts.at("max_depth"));
    r.stats.luts.max_fanout = as_size(luts.at("max_fanout"));
    const auto& ternary = stats.at("ternary");
    r.stats.x_outputs_checked = as_size(ternary.at("outputs_checked"));
    r.stats.x_proved_structural = as_size(ternary.at("proved_structural"));
    r.stats.x_proved_exhaustive = as_size(ternary.at("proved_exhaustive"));
    r.stats.x_lanes_simulated = as_size(ternary.at("lanes_simulated"));
    return r;
}

std::string format_lint_report(const LintReport& r) {
    std::string out;
    for (const auto& f : r.findings) {
        out += severity_name(f.severity);
        out += " [" + f.check + "] " + f.where;
        if (!f.object.empty()) out += " / " + f.object;
        out += ": " + f.message + "\n";
    }
    const auto& s = r.stats;
    out += "analyzed: " + std::to_string(s.modules.modules) + " modules (" +
           std::to_string(s.modules.nets) + " nets, " +
           std::to_string(s.modules.assigns) + " assigns, " +
           std::to_string(s.modules.instances) + " instances), " +
           std::to_string(s.aig.aigs) + " AIGs (" +
           std::to_string(s.aig.ands) + " ANDs, depth " +
           std::to_string(s.aig.max_depth) + ", max fanout " +
           std::to_string(s.aig.max_fanout) + "), " +
           std::to_string(s.luts.networks) + " LUT networks (" +
           std::to_string(s.luts.luts) + " LUTs, depth " +
           std::to_string(s.luts.max_depth) + ")\n";
    if (s.x_outputs_checked > 0)
        out += "ternary: " + std::to_string(s.x_outputs_checked) +
               " outputs checked, " +
               std::to_string(s.x_proved_structural) + " proved structurally, " +
               std::to_string(s.x_proved_exhaustive) + " proved exhaustively, " +
               std::to_string(s.x_lanes_simulated) + " lanes simulated\n";
    out += "lint: " + r.summary() + "\n";
    return out;
}

}  // namespace matador::lint
