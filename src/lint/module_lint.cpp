#include "lint/module_lint.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace matador::lint {

namespace {

using rtl::Expr;
using rtl::ExprP;
using rtl::Module;
using rtl::Stmt;

/// Everything the checks need to know about one declared signal.
struct NetInfo {
    int width = 1;
    bool is_reg = false;
    bool is_input = false;
    bool is_output = false;
    /// Continuous drivers per bit (assign lhs + instance output pins).
    std::vector<std::uint8_t> cont_drivers;
    bool always_driven = false;  ///< assigned inside an always block
    /// Connected to an instance of a module outside the lint scope; its
    /// drive direction is unknowable, so undriven/unused stay quiet.
    bool ext_connected = false;
    bool read = false;       ///< referenced by any rhs / condition / pin
    bool live_seed = false;  ///< read by an output, register, or instance
    bool live = false;       ///< reaches a live seed through assigns
};

class ModuleAnalyzer {
public:
    ModuleAnalyzer(const Module& mod, const std::vector<const Module*>& scope,
                   std::vector<Finding>& findings)
        : mod_(mod), scope_(scope), findings_(findings),
          where_("module " + mod.name) {}

    void run(ModuleLintStats* stats) {
        declare_signals();
        collect_assigns();
        collect_always_blocks();
        collect_instances();
        check_drivers();
        check_cycles();
        check_liveness();
        check_constants();
        if (stats) {
            stats->modules += 1;
            stats->ports += mod_.ports.size();
            stats->nets += mod_.nets.size();
            stats->assigns += mod_.assigns.size();
            stats->always_blocks += mod_.always_blocks.size();
            stats->instances += mod_.instances.size();
        }
    }

private:
    void add(const char* chk, Severity sev, std::string object,
             std::string message) {
        findings_.push_back(
            {chk, sev, where_, std::move(object), std::move(message)});
    }

    // -- symbol table -------------------------------------------------------

    void declare_signals() {
        for (const auto& p : mod_.ports) {
            NetInfo info;
            info.width = p.width;
            info.is_reg = p.is_reg;
            info.is_input = p.dir == rtl::PortDir::kInput;
            info.is_output = p.dir == rtl::PortDir::kOutput;
            info.cont_drivers.assign(std::size_t(std::max(p.width, 1)), 0);
            nets_.emplace(p.name, std::move(info));
        }
        for (const auto& n : mod_.nets) {
            if (nets_.count(n.name)) continue;  // port declaration wins
            NetInfo info;
            info.width = n.width;
            info.is_reg = n.is_reg;
            info.cont_drivers.assign(std::size_t(std::max(n.width, 1)), 0);
            nets_.emplace(n.name, std::move(info));
        }
    }

    NetInfo* lookup(const std::string& name) {
        const auto it = nets_.find(name);
        if (it != nets_.end()) return &it->second;
        if (unknown_reported_.insert(name).second)
            add(check::kUnknownNet, Severity::kError, name,
                "referenced but never declared");
        return nullptr;
    }

    // -- expression walks ---------------------------------------------------

    /// Check an Index/Slice select against the declaration width.
    void check_bounds(const std::string& name, int msb, int lsb) {
        NetInfo* info = lookup(name);
        if (!info) return;
        if (lsb < 0 || msb < lsb || msb >= info->width)
            add(check::kBitRange, Severity::kError, name,
                "select [" + std::to_string(msb) +
                    (msb == lsb ? "" : ":" + std::to_string(lsb)) +
                    "] outside [" + std::to_string(info->width - 1) + ":0]");
    }

    /// Mark every net referenced by `e` as read (and optionally as a
    /// liveness seed), with bit-select bounds checking.
    void mark_read(const ExprP& e, bool live_seed = false) {
        if (!e) return;
        std::visit(
            [&](const auto& node) {
                using T = std::decay_t<decltype(node)>;
                if constexpr (std::is_same_v<T, Expr::Ref>) {
                    touch_read(node.name, live_seed);
                } else if constexpr (std::is_same_v<T, Expr::Index>) {
                    touch_read(node.name, live_seed);
                    check_bounds(node.name, node.index, node.index);
                } else if constexpr (std::is_same_v<T, Expr::Slice>) {
                    touch_read(node.name, live_seed);
                    check_bounds(node.name, node.msb, node.lsb);
                } else if constexpr (std::is_same_v<T, Expr::Const>) {
                    // nothing to do
                } else if constexpr (std::is_same_v<T, Expr::Unary>) {
                    mark_read(node.a, live_seed);
                } else if constexpr (std::is_same_v<T, Expr::Binary>) {
                    mark_read(node.a, live_seed);
                    mark_read(node.b, live_seed);
                } else if constexpr (std::is_same_v<T, Expr::Ternary>) {
                    mark_read(node.cond, live_seed);
                    mark_read(node.then_e, live_seed);
                    mark_read(node.else_e, live_seed);
                } else if constexpr (std::is_same_v<T, Expr::Concat>) {
                    for (const auto& part : node.parts)
                        mark_read(part, live_seed);
                } else if constexpr (std::is_same_v<T, Expr::Signed>) {
                    mark_read(node.a, live_seed);
                }
            },
            e->node);
    }

    void touch_read(const std::string& name, bool live_seed) {
        if (NetInfo* info = lookup(name)) {
            info->read = true;
            if (live_seed) info->live_seed = true;
        }
    }

    /// Decompose an assignment target into (name, msb, lsb) bit ranges.
    /// Anything that is not a legal lvalue shape is ignored (the writer
    /// never emits one).
    void for_each_lvalue(const ExprP& e,
                         const std::function<void(const std::string&, int, int)>& fn) {
        if (!e) return;
        if (const auto* r = std::get_if<Expr::Ref>(&e->node)) {
            if (NetInfo* info = lookup(r->name)) fn(r->name, info->width - 1, 0);
        } else if (const auto* i = std::get_if<Expr::Index>(&e->node)) {
            check_bounds(i->name, i->index, i->index);
            if (nets_.count(i->name)) fn(i->name, i->index, i->index);
        } else if (const auto* s = std::get_if<Expr::Slice>(&e->node)) {
            check_bounds(s->name, s->msb, s->lsb);
            if (nets_.count(s->name)) fn(s->name, s->msb, s->lsb);
        } else if (const auto* c = std::get_if<Expr::Concat>(&e->node)) {
            for (const auto& part : c->parts) for_each_lvalue(part, fn);
        }
    }

    /// Add one continuous driver to every bit of an lvalue (clamped to the
    /// declared range; out-of-range bits were already reported).
    void drive_lvalue(const ExprP& e) {
        for_each_lvalue(e, [&](const std::string& name, int msb, int lsb) {
            NetInfo& info = nets_.at(name);
            const int hi = std::min(msb, info.width - 1);
            for (int b = std::max(lsb, 0); b <= hi; ++b)
                if (info.cont_drivers[std::size_t(b)] < 0xff)
                    info.cont_drivers[std::size_t(b)]++;
        });
    }

    /// Width of an lvalue in bits (known shapes only).
    std::optional<int> lvalue_width(const ExprP& e) {
        int total = 0;
        bool known = true;
        for_each_lvalue(e, [&](const std::string& name, int msb, int lsb) {
            (void)name;
            if (msb < lsb) known = false;
            total += msb - lsb + 1;
        });
        if (!known || total == 0) return std::nullopt;
        return total;
    }

    /// Natural width of an expression, flagging definite operand-width
    /// conflicts on the way.  nullopt = context-determined / unknown
    /// (unsized constants, arithmetic), which never flags.
    std::optional<int> infer_width(const ExprP& e) {
        if (!e) return std::nullopt;
        using rtl::BinaryOp;
        using rtl::UnaryOp;
        if (const auto* r = std::get_if<Expr::Ref>(&e->node)) {
            const auto it = nets_.find(r->name);
            return it == nets_.end() ? std::nullopt
                                     : std::optional<int>(it->second.width);
        }
        if (std::get_if<Expr::Index>(&e->node)) return 1;
        if (const auto* s = std::get_if<Expr::Slice>(&e->node))
            return s->msb >= s->lsb ? std::optional<int>(s->msb - s->lsb + 1)
                                    : std::nullopt;
        if (const auto* c = std::get_if<Expr::Const>(&e->node))
            return c->width > 0 ? std::optional<int>(c->width) : std::nullopt;
        if (const auto* u = std::get_if<Expr::Unary>(&e->node)) {
            const auto w = infer_width(u->a);
            if (u->op == UnaryOp::kReduceAnd || u->op == UnaryOp::kReduceOr)
                return 1;
            return w;  // kNot / kMinus preserve operand width
        }
        if (const auto* b = std::get_if<Expr::Binary>(&e->node)) {
            const auto wa = infer_width(b->a);
            const auto wb = infer_width(b->b);
            switch (b->op) {
                case BinaryOp::kAnd:
                case BinaryOp::kOr:
                case BinaryOp::kXor:
                    if (wa && wb && *wa != *wb)
                        add(check::kWidthMismatch, Severity::kWarning, "",
                            "bitwise operands differ in width: " +
                                std::to_string(*wa) + " vs " +
                                std::to_string(*wb));
                    if (wa && wb) return std::max(*wa, *wb);
                    return std::nullopt;
                case BinaryOp::kEq:
                case BinaryOp::kNe:
                case BinaryOp::kLt:
                case BinaryOp::kLe:
                case BinaryOp::kGt:
                case BinaryOp::kGe:
                    return 1;
                case BinaryOp::kShl:
                case BinaryOp::kShr:
                    return wa;
                case BinaryOp::kAdd:
                case BinaryOp::kSub:
                    // Context-determined (carry / borrow); never flag.
                    return std::nullopt;
            }
            return std::nullopt;
        }
        if (const auto* t = std::get_if<Expr::Ternary>(&e->node)) {
            const auto wt = infer_width(t->then_e);
            const auto we = infer_width(t->else_e);
            infer_width(t->cond);
            if (wt && we && *wt != *we)
                add(check::kWidthMismatch, Severity::kWarning, "",
                    "ternary branches differ in width: " + std::to_string(*wt) +
                        " vs " + std::to_string(*we));
            if (wt && we) return std::max(*wt, *we);
            return std::nullopt;
        }
        if (const auto* c = std::get_if<Expr::Concat>(&e->node)) {
            int total = 0;
            for (const auto& part : c->parts) {
                const auto w = infer_width(part);
                if (!w) return std::nullopt;
                total += *w;
            }
            return total;
        }
        if (const auto* s = std::get_if<Expr::Signed>(&e->node))
            return infer_width(s->a);
        return std::nullopt;
    }

    // -- collection passes --------------------------------------------------

    void collect_assigns() {
        for (const auto& a : mod_.assigns) {
            drive_lvalue(a.lhs);
            mark_read(a.rhs);
            const auto lw = lvalue_width(a.lhs);
            const auto rw = infer_width(a.rhs);
            if (lw && rw && *lw != *rw)
                add(check::kWidthMismatch, Severity::kWarning,
                    lvalue_name(a.lhs),
                    "assign width mismatch: lhs " + std::to_string(*lw) +
                        " bits, rhs " + std::to_string(*rw) + " bits");
        }
    }

    void collect_always_blocks() {
        for (const auto& ab : mod_.always_blocks) {
            touch_read(ab.clock, true);
            for (const auto& s : ab.body) walk_stmt(s);
        }
    }

    void walk_stmt(const Stmt& s) {
        std::visit(
            [&](const auto& node) {
                using T = std::decay_t<decltype(node)>;
                if constexpr (std::is_same_v<T, rtl::NonBlocking> ||
                              std::is_same_v<T, rtl::Blocking>) {
                    for_each_lvalue(node.lhs,
                                    [&](const std::string& name, int, int) {
                                        nets_.at(name).always_driven = true;
                                    });
                    // Everything a register consumes is live state.
                    mark_read(node.rhs, true);
                } else if constexpr (std::is_same_v<T, rtl::IfStmt>) {
                    mark_read(node.cond, true);
                    for (const auto& b : node.then_body) walk_stmt(b);
                    for (const auto& b : node.else_body) walk_stmt(b);
                } else if constexpr (std::is_same_v<T, rtl::CaseStmt>) {
                    mark_read(node.subject, true);
                    for (const auto& item : node.items) {
                        if (item.label) mark_read(item.label, true);
                        for (const auto& b : item.body) walk_stmt(b);
                    }
                }
            },
            s.node);
    }

    const Module* find_module(const std::string& name) const {
        for (const Module* m : scope_)
            if (m && m->name == name) return m;
        return nullptr;
    }

    void collect_instances() {
        for (const auto& inst : mod_.instances) {
            const Module* target = find_module(inst.module_name);
            if (!target) {
                add(check::kUnknownModule, Severity::kInfo, inst.instance_name,
                    "instance of '" + inst.module_name +
                        "' outside the lint scope; connections unchecked");
                for (const auto& [port, conn] : inst.connections) {
                    (void)port;
                    mark_read(conn, true);
                    for_each_lvalue(conn, [&](const std::string& n, int, int) {
                        nets_.at(n).ext_connected = true;
                    });
                }
                continue;
            }
            for (const auto& [port_name, conn] : inst.connections) {
                const auto port = std::find_if(
                    target->ports.begin(), target->ports.end(),
                    [&](const rtl::Port& p) { return p.name == port_name; });
                if (port == target->ports.end()) {
                    add(check::kUnknownModule, Severity::kError,
                        inst.instance_name,
                        "connection to nonexistent port '" + port_name +
                            "' of module '" + target->name + "'");
                    mark_read(conn, true);
                    continue;
                }
                if (port->dir == rtl::PortDir::kInput) {
                    mark_read(conn, true);
                } else {
                    // The instance drives this net; reading it elsewhere is
                    // what makes it live.
                    drive_lvalue(conn);
                    for_each_lvalue(conn, [&](const std::string& n, int, int) {
                        nets_.at(n).ext_connected = true;
                    });
                }
                const auto cw = port->dir == rtl::PortDir::kInput
                                    ? infer_width(conn)
                                    : lvalue_width(conn);
                if (cw && *cw != port->width)
                    add(check::kWidthMismatch, Severity::kWarning,
                        inst.instance_name + "." + port_name,
                        "port is " + std::to_string(port->width) +
                            " bits, connection is " + std::to_string(*cw));
            }
        }
    }

    // -- checks -------------------------------------------------------------

    void check_drivers() {
        for (const auto& [name, info] : nets_) {
            const bool cont = std::any_of(info.cont_drivers.begin(),
                                          info.cont_drivers.end(),
                                          [](std::uint8_t c) { return c > 0; });
            const int multi_bit = [&] {
                for (std::size_t b = 0; b < info.cont_drivers.size(); ++b)
                    if (info.cont_drivers[b] > 1) return int(b);
                return -1;
            }();
            if (multi_bit >= 0)
                add(check::kMultiDriven, Severity::kError, name,
                    "bit " + std::to_string(multi_bit) +
                        " has multiple continuous drivers");
            else if (cont && info.always_driven)
                add(check::kMultiDriven, Severity::kError, name,
                    "driven by both a continuous assign and an always block");
            if (info.read && !info.is_input && !cont && !info.always_driven &&
                !info.ext_connected)
                add(check::kUndriven, Severity::kError, name,
                    "read but never driven");
            if (!info.read && !info.is_output && !info.ext_connected) {
                if (info.is_input)
                    add(check::kUnused, Severity::kInfo, name,
                        "input port never read");
                else if (cont || info.always_driven)
                    add(check::kUnused, Severity::kWarning, name,
                        "driven but never read");
                else
                    add(check::kUnused, Severity::kInfo, name,
                        "declared but never used");
            }
        }
    }

    /// Tarjan SCC over the net-level combinational signal graph.
    void check_cycles() {
        // Node ids for every declared net.
        std::map<std::string, int> id;
        std::vector<const std::string*> names;
        for (const auto& [name, info] : nets_) {
            (void)info;
            id.emplace(name, int(names.size()));
            names.push_back(&name);
        }
        std::vector<std::vector<int>> edges(names.size());
        std::vector<bool> self_loop(names.size(), false);
        const auto connect = [&](const std::set<std::string>& from,
                                 const std::set<std::string>& to) {
            for (const auto& f : from) {
                const auto fi = id.find(f);
                if (fi == id.end()) continue;
                for (const auto& t : to) {
                    const auto ti = id.find(t);
                    if (ti == id.end()) continue;
                    edges[std::size_t(fi->second)].push_back(ti->second);
                    if (fi->second == ti->second)
                        self_loop[std::size_t(fi->second)] = true;
                }
            }
        };
        for (const auto& a : mod_.assigns)
            connect(expr_nets(a.rhs), expr_nets(a.lhs));
        for (const auto& inst : mod_.instances) {
            const Module* target = find_module(inst.module_name);
            // Only purely combinational instances propagate same-cycle.
            if (!target || !target->always_blocks.empty()) continue;
            std::set<std::string> ins, outs;
            for (const auto& [port_name, conn] : inst.connections) {
                const auto port = std::find_if(
                    target->ports.begin(), target->ports.end(),
                    [&](const rtl::Port& p) { return p.name == port_name; });
                if (port == target->ports.end()) continue;
                const auto nets = expr_nets(conn);
                auto& side = port->dir == rtl::PortDir::kInput ? ins : outs;
                side.insert(nets.begin(), nets.end());
            }
            connect(ins, outs);
        }

        // Iterative Tarjan.
        const int n = int(names.size());
        std::vector<int> index(std::size_t(n), -1), low(std::size_t(n), 0);
        std::vector<bool> on_stack(std::size_t(n), false);
        std::vector<int> stack;
        int next_index = 0;
        struct Frame {
            int v;
            std::size_t edge;
        };
        for (int root = 0; root < n; ++root) {
            if (index[std::size_t(root)] != -1) continue;
            std::vector<Frame> call{{root, 0}};
            index[std::size_t(root)] = low[std::size_t(root)] = next_index++;
            stack.push_back(root);
            on_stack[std::size_t(root)] = true;
            while (!call.empty()) {
                Frame& f = call.back();
                const auto& vs = edges[std::size_t(f.v)];
                if (f.edge < vs.size()) {
                    const int w = vs[f.edge++];
                    if (index[std::size_t(w)] == -1) {
                        index[std::size_t(w)] = low[std::size_t(w)] =
                            next_index++;
                        stack.push_back(w);
                        on_stack[std::size_t(w)] = true;
                        call.push_back({w, 0});
                    } else if (on_stack[std::size_t(w)]) {
                        low[std::size_t(f.v)] =
                            std::min(low[std::size_t(f.v)], index[std::size_t(w)]);
                    }
                    continue;
                }
                // All edges done: pop an SCC if v is a root.
                if (low[std::size_t(f.v)] == index[std::size_t(f.v)]) {
                    std::vector<int> scc;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[std::size_t(w)] = false;
                        scc.push_back(w);
                    } while (w != f.v);
                    if (scc.size() > 1 ||
                        (scc.size() == 1 && self_loop[std::size_t(scc[0])]))
                        report_cycle(scc, names);
                }
                const int v = f.v;
                call.pop_back();
                if (!call.empty())
                    low[std::size_t(call.back().v)] = std::min(
                        low[std::size_t(call.back().v)], low[std::size_t(v)]);
            }
        }
    }

    void report_cycle(const std::vector<int>& scc,
                      const std::vector<const std::string*>& names) {
        std::vector<std::string> members;
        for (int v : scc) members.push_back(*names[std::size_t(v)]);
        std::sort(members.begin(), members.end());
        std::string list;
        const std::size_t shown = std::min<std::size_t>(members.size(), 8);
        for (std::size_t i = 0; i < shown; ++i)
            list += (i ? " -> " : "") + members[i];
        if (members.size() > shown)
            list += " -> ... (" + std::to_string(members.size()) + " nets)";
        add(check::kCombCycle, Severity::kError, members.front(),
            "combinational cycle through " + list);
    }

    std::set<std::string> expr_nets(const ExprP& e) const {
        std::set<std::string> out;
        collect_nets(e, out);
        return out;
    }

    void collect_nets(const ExprP& e, std::set<std::string>& out) const {
        if (!e) return;
        std::visit(
            [&](const auto& node) {
                using T = std::decay_t<decltype(node)>;
                if constexpr (std::is_same_v<T, Expr::Ref>) {
                    out.insert(node.name);
                } else if constexpr (std::is_same_v<T, Expr::Index>) {
                    out.insert(node.name);
                } else if constexpr (std::is_same_v<T, Expr::Slice>) {
                    out.insert(node.name);
                } else if constexpr (std::is_same_v<T, Expr::Unary>) {
                    collect_nets(node.a, out);
                } else if constexpr (std::is_same_v<T, Expr::Binary>) {
                    collect_nets(node.a, out);
                    collect_nets(node.b, out);
                } else if constexpr (std::is_same_v<T, Expr::Ternary>) {
                    collect_nets(node.cond, out);
                    collect_nets(node.then_e, out);
                    collect_nets(node.else_e, out);
                } else if constexpr (std::is_same_v<T, Expr::Concat>) {
                    for (const auto& part : node.parts)
                        collect_nets(part, out);
                } else if constexpr (std::is_same_v<T, Expr::Signed>) {
                    collect_nets(node.a, out);
                }
            },
            e->node);
    }

    /// Dead logic: back-propagate liveness from outputs / registers /
    /// instances through the continuous assigns.
    void check_liveness() {
        for (auto& [name, info] : nets_) {
            (void)name;
            info.live = info.live_seed || info.is_output || info.ext_connected;
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto& a : mod_.assigns) {
                bool lhs_live = false;
                for (const auto& t : expr_nets(a.lhs))
                    if (nets_.count(t) && nets_.at(t).live) lhs_live = true;
                if (!lhs_live) continue;
                for (const auto& s : expr_nets(a.rhs)) {
                    const auto it = nets_.find(s);
                    if (it != nets_.end() && !it->second.live) {
                        it->second.live = true;
                        changed = true;
                    }
                }
            }
        }
        for (const auto& [name, info] : nets_) {
            const bool cont = std::any_of(info.cont_drivers.begin(),
                                          info.cont_drivers.end(),
                                          [](std::uint8_t c) { return c > 0; });
            // "Driven but never read" is already kUnused; dead-logic is the
            // transitive form - read, but only by other dead logic.
            if (cont && !info.always_driven && info.read && !info.live)
                add(check::kDeadLogic, Severity::kWarning, name,
                    "never reaches an output, register, or instance");
        }
    }

    /// Constant propagation over the continuous assigns; flags nets that
    /// fold to a constant without being written as one.
    void check_constants() {
        // Known bit values per net (LSB first).
        std::map<std::string, std::vector<std::optional<bool>>> known;
        for (const auto& [name, info] : nets_)
            known.emplace(name, std::vector<std::optional<bool>>(
                                    std::size_t(std::max(info.width, 1))));
        bool changed = true;
        std::size_t rounds = 0;
        while (changed && rounds++ < mod_.assigns.size() + 2) {
            changed = false;
            for (const auto& a : mod_.assigns) {
                const auto bits = eval_const(a.rhs, known);
                if (!bits) continue;
                changed = assign_known(a.lhs, *bits, known) || changed;
            }
        }
        for (const auto& a : mod_.assigns) {
            if (std::get_if<Expr::Const>(&a.rhs->node))
                continue;  // written as a constant on purpose
            const auto bits = eval_const(a.rhs, known);
            if (!bits) continue;
            std::string value;
            for (auto it = bits->rbegin(); it != bits->rend(); ++it)
                value += *it ? '1' : '0';
            add(check::kConstLogic, Severity::kWarning, lvalue_name(a.lhs),
                "always evaluates to " + std::to_string(bits->size()) + "'b" +
                    value);
        }
    }

    /// Record folded bits into the lvalue's known-bit table.  Returns true
    /// when any bit became newly known.
    bool assign_known(const ExprP& lhs, const std::vector<bool>& bits,
                      std::map<std::string, std::vector<std::optional<bool>>>&
                          known) {
        // Only single-target lvalues participate (concat targets are rare
        // and not worth the bookkeeping).
        std::string name;
        int lo = 0, hi = -1;
        if (const auto* r = std::get_if<Expr::Ref>(&lhs->node)) {
            name = r->name;
            const auto it = nets_.find(name);
            if (it == nets_.end()) return false;
            hi = it->second.width - 1;
        } else if (const auto* i = std::get_if<Expr::Index>(&lhs->node)) {
            name = i->name;
            lo = hi = i->index;
        } else if (const auto* s = std::get_if<Expr::Slice>(&lhs->node)) {
            name = s->name;
            lo = s->lsb;
            hi = s->msb;
        } else {
            return false;
        }
        const auto it = known.find(name);
        if (it == known.end()) return false;
        bool changed = false;
        for (int b = lo; b <= hi && b - lo < int(bits.size()); ++b) {
            if (b < 0 || b >= int(it->second.size())) continue;
            auto& slot = it->second[std::size_t(b)];
            const bool v = bits[std::size_t(b - lo)];
            if (!slot || *slot != v) {
                // Conflicting folds (multi-driver nets) stay unknown.
                if (slot && *slot != v) return false;
                slot = v;
                changed = true;
            }
        }
        return changed;
    }

    /// Fold an expression to definite bits (LSB first); nullopt when any
    /// leaf is unknown or the operator is outside the supported set.
    std::optional<std::vector<bool>> eval_const(
        const ExprP& e,
        const std::map<std::string, std::vector<std::optional<bool>>>& known) {
        if (!e) return std::nullopt;
        using rtl::BinaryOp;
        using rtl::UnaryOp;
        using Bits = std::vector<bool>;
        if (const auto* c = std::get_if<Expr::Const>(&e->node)) {
            if (c->width <= 0 || c->width > 64) return std::nullopt;
            Bits bits(std::size_t(c->width));
            for (int b = 0; b < c->width; ++b)
                bits[std::size_t(b)] = (c->value >> b) & 1;
            return bits;
        }
        const auto net_bits = [&](const std::string& name, int lo,
                                  int hi) -> std::optional<Bits> {
            const auto it = known.find(name);
            if (it == known.end()) return std::nullopt;
            // Registers and inputs never fold.
            const auto ni = nets_.find(name);
            if (ni == nets_.end() || ni->second.always_driven ||
                ni->second.is_input || ni->second.ext_connected)
                return std::nullopt;
            if (lo < 0 || hi >= int(it->second.size()) || hi < lo)
                return std::nullopt;
            Bits bits;
            for (int b = lo; b <= hi; ++b) {
                const auto& slot = it->second[std::size_t(b)];
                if (!slot) return std::nullopt;
                bits.push_back(*slot);
            }
            return bits;
        };
        if (const auto* r = std::get_if<Expr::Ref>(&e->node)) {
            const auto it = nets_.find(r->name);
            if (it == nets_.end()) return std::nullopt;
            return net_bits(r->name, 0, it->second.width - 1);
        }
        if (const auto* i = std::get_if<Expr::Index>(&e->node))
            return net_bits(i->name, i->index, i->index);
        if (const auto* s = std::get_if<Expr::Slice>(&e->node))
            return net_bits(s->name, s->lsb, s->msb);
        if (const auto* u = std::get_if<Expr::Unary>(&e->node)) {
            auto a = eval_const(u->a, known);
            if (!a) return std::nullopt;
            switch (u->op) {
                case UnaryOp::kNot:
                    for (std::size_t b = 0; b < a->size(); ++b)
                        (*a)[b] = !(*a)[b];
                    return a;
                case UnaryOp::kReduceAnd:
                    return Bits{std::all_of(a->begin(), a->end(),
                                            [](bool v) { return v; })};
                case UnaryOp::kReduceOr:
                    return Bits{std::any_of(a->begin(), a->end(),
                                            [](bool v) { return v; })};
                case UnaryOp::kMinus:
                    return std::nullopt;
            }
            return std::nullopt;
        }
        if (const auto* b = std::get_if<Expr::Binary>(&e->node)) {
            const auto a = eval_const(b->a, known);
            const auto c = eval_const(b->b, known);
            if (!a || !c || a->size() != c->size()) return std::nullopt;
            Bits bits(a->size());
            switch (b->op) {
                case BinaryOp::kAnd:
                    for (std::size_t i = 0; i < bits.size(); ++i)
                        bits[i] = (*a)[i] && (*c)[i];
                    return bits;
                case BinaryOp::kOr:
                    for (std::size_t i = 0; i < bits.size(); ++i)
                        bits[i] = (*a)[i] || (*c)[i];
                    return bits;
                case BinaryOp::kXor:
                    for (std::size_t i = 0; i < bits.size(); ++i)
                        bits[i] = (*a)[i] != (*c)[i];
                    return bits;
                case BinaryOp::kEq:
                    return Bits{*a == *c};
                case BinaryOp::kNe:
                    return Bits{*a != *c};
                default:
                    return std::nullopt;
            }
        }
        if (const auto* t = std::get_if<Expr::Ternary>(&e->node)) {
            const auto cond = eval_const(t->cond, known);
            if (!cond) return std::nullopt;
            const bool taken = std::any_of(cond->begin(), cond->end(),
                                           [](bool v) { return v; });
            return eval_const(taken ? t->then_e : t->else_e, known);
        }
        if (const auto* c = std::get_if<Expr::Concat>(&e->node)) {
            // Verilog concat: parts[0] is the MSB group.
            Bits bits;
            for (auto it = c->parts.rbegin(); it != c->parts.rend(); ++it) {
                const auto part = eval_const(*it, known);
                if (!part) return std::nullopt;
                bits.insert(bits.end(), part->begin(), part->end());
            }
            return bits;
        }
        return std::nullopt;  // Signed / arithmetic: out of scope
    }

    /// Display name of an assignment target.
    std::string lvalue_name(const ExprP& e) const {
        if (!e) return "?";
        if (const auto* r = std::get_if<Expr::Ref>(&e->node)) return r->name;
        if (const auto* i = std::get_if<Expr::Index>(&e->node))
            return i->name + "[" + std::to_string(i->index) + "]";
        if (const auto* s = std::get_if<Expr::Slice>(&e->node))
            return s->name + "[" + std::to_string(s->msb) + ":" +
                   std::to_string(s->lsb) + "]";
        if (std::get_if<Expr::Concat>(&e->node)) return "{...}";
        return "?";
    }

    const Module& mod_;
    const std::vector<const Module*>& scope_;
    std::vector<Finding>& findings_;
    std::string where_;
    std::map<std::string, NetInfo> nets_;
    std::set<std::string> unknown_reported_;
};

}  // namespace

void lint_module(const Module& mod, const std::vector<const Module*>& scope,
                 std::vector<Finding>& findings, ModuleLintStats* stats) {
    ModuleAnalyzer(mod, scope, findings).run(stats);
}

}  // namespace matador::lint
