#include "lint/lut_lint.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace matador::lint {

void lint_lut_network(const logic::LutNetwork& net, const std::string& where,
                      std::vector<Finding>& findings, LutLintStats* stats) {
    const std::size_t total_nodes = 1 + net.num_pis() + net.num_luts();

    // Topological-order contract: a LUT may only read the constant, PIs,
    // or earlier LUTs.
    for (std::size_t i = 0; i < net.num_luts(); ++i) {
        const auto& lut = net.lut(i);
        const std::uint32_t id = net.lut_id(i);
        for (const std::uint32_t in : lut.inputs)
            if (in >= id)
                findings.push_back(
                    {check::kLutBadInput, Severity::kError, where,
                     "lut " + std::to_string(i),
                     "input node " + std::to_string(in) +
                         " is not earlier in topological order (id " +
                         std::to_string(id) + ")"});
    }

    // Reachability from the outputs.
    std::vector<bool> reach(total_nodes, false);
    std::vector<std::uint32_t> stack;
    for (std::size_t i = 0; i < net.num_outputs(); ++i)
        stack.push_back(net.output(i) >> 1);
    while (!stack.empty()) {
        const std::uint32_t id = stack.back();
        stack.pop_back();
        if (id >= total_nodes || reach[id]) continue;
        reach[id] = true;
        if (net.is_lut(id))
            for (const std::uint32_t in : net.lut(id - net.num_pis() - 1).inputs)
                if (in < id) stack.push_back(in);
    }

    std::vector<std::uint32_t> fanout(total_nodes, 0);
    std::size_t dead = 0, consts = 0, dups = 0;
    std::map<std::pair<std::vector<std::uint32_t>, std::uint64_t>, std::size_t>
        shape_seen;
    for (std::size_t i = 0; i < net.num_luts(); ++i) {
        const auto& lut = net.lut(i);
        if (!reach[net.lut_id(i)]) {
            ++dead;
            findings.push_back({check::kLutDead, Severity::kWarning, where,
                                "lut " + std::to_string(i),
                                "unreachable from any output"});
            continue;
        }
        for (const std::uint32_t in : lut.inputs)
            if (in < total_nodes) ++fanout[in];
        const std::size_t k = lut.inputs.size();
        if (k > 0 && k <= 6) {
            const std::uint64_t mask =
                k == 6 ? ~std::uint64_t(0)
                       : (std::uint64_t(1) << (std::uint64_t(1) << k)) - 1;
            const std::uint64_t t = lut.truth & mask;
            if (t == 0 || t == mask) {
                ++consts;
                findings.push_back({check::kLutConst, Severity::kWarning, where,
                                    "lut " + std::to_string(i),
                                    std::string("truth table is constant ") +
                                        (t == 0 ? "0" : "1")});
            }
        }
        const auto [it, fresh] =
            shape_seen.emplace(std::make_pair(lut.inputs, lut.truth), i);
        if (!fresh) {
            ++dups;
            // Structural duplicates are the signature of the DON'T_TOUCH
            // flow (sharing disabled on purpose) - informational only.
            findings.push_back({check::kLutDuplicate, Severity::kInfo, where,
                                "lut " + std::to_string(i),
                                "identical to lut " +
                                    std::to_string(it->second) +
                                    " (same inputs and truth table)"});
        }
    }

    if (stats) {
        stats->networks += 1;
        stats->luts += net.num_luts();
        stats->dead_luts += dead;
        stats->const_luts += consts;
        stats->duplicate_luts += dups;
        stats->max_depth = std::max<std::size_t>(stats->max_depth, net.depth());
        const auto max_it = std::max_element(fanout.begin(), fanout.end());
        if (max_it != fanout.end())
            stats->max_fanout = std::max<std::size_t>(stats->max_fanout, *max_it);
    }
}

}  // namespace matador::lint
