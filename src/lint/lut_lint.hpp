// Structural lint of a mapped LUT network.
//
// Checks: malformed LUT inputs (forward or self references break the
// topological-order contract - error), LUTs unreachable from any output,
// LUTs whose truth table is constant over their input count, and duplicate
// LUTs (same inputs, same truth - expected under DON'T_TOUCH mapping where
// sharing is disabled, so severity is info).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "logic/lut_network.hpp"

namespace matador::lint {

/// Structural counts aggregated over the analyzed LUT networks.
struct LutLintStats {
    std::size_t networks = 0;
    std::size_t luts = 0;
    std::size_t dead_luts = 0;
    std::size_t const_luts = 0;
    std::size_t duplicate_luts = 0;
    std::size_t max_depth = 0;
    std::size_t max_fanout = 0;
};

/// Lint one mapped network.  `where` labels the findings ("hcb 3 luts").
void lint_lut_network(const logic::LutNetwork& net, const std::string& where,
                      std::vector<Finding>& findings,
                      LutLintStats* stats = nullptr);

}  // namespace matador::lint
