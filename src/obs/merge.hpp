// Cross-process stitching of trace and metrics documents.
//
// A distributed sweep produces one trace.json / metrics.json per shard
// process (dropped under <cache_dir>/queue/stats/).  These helpers fold
// them back into single documents:
//
//   * merge_traces - one Chrome trace with each input as its own process
//     track group (pid 1..N, named after its source), timelines aligned
//     via each file's wall_anchor_us so shard spans interleave in real
//     time.  The result loads in Perfetto as one multi-track view of the
//     whole sweep.
//   * merge_metrics - counters summed, gauges max'd, histograms merged by
//     concatenating their raw ring samples and recomputing the exact
//     nearest-rank quantiles over the union.
//
// Both accept any document the corresponding to_json() produced (version
// checked) and return the same format, so merges compose.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace matador::obs {

/// Stitch Chrome trace documents into one multi-process timeline.
/// `names[i]` labels input i's track group; when `names` is empty (or
/// short) the input's own process_name is used.  Throws on a document
/// that is not a matador trace.
util::Json merge_traces(const std::vector<util::Json>& traces,
                        const std::vector<std::string>& names = {});

/// Sum matador-metrics documents (see header comment for the per-type
/// rule).  Throws on a document of the wrong format.
util::Json merge_metrics(const std::vector<util::Json>& docs);

/// Human-readable rendering of a matador-metrics document (the
/// `matador metrics` table view).
std::string format_metrics_text(const util::Json& doc);

/// Prometheus text-exposition rendering of a matador-metrics document
/// (same output shape as MetricsRegistry::to_prometheus).
std::string format_metrics_prometheus(const util::Json& doc);

}  // namespace matador::obs
