#include "obs/trace.hpp"

#include <chrono>

#include "util/fsio.hpp"

namespace matador::obs {

std::uint64_t wall_anchor_us() {
    // Pin the steady-clock epoch to the system clock exactly once, the
    // first time anything asks (recorder construction in practice).  The
    // two clocks are sampled back to back, so the anchor is accurate to a
    // few microseconds - coarse but ample for aligning shard tracks.
    static const std::uint64_t anchor = [] {
        detail::process_epoch();  // fix the steady epoch first
        const auto wall = std::chrono::system_clock::now().time_since_epoch();
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(wall).count();
        return std::uint64_t(us) - now_ns() / 1000;
    }();
    return anchor;
}

TraceRecorder& TraceRecorder::instance() {
    static TraceRecorder recorder;
    return recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
    thread_local ThreadBuffer* buffer = nullptr;
    if (!buffer) {
        std::lock_guard<std::mutex> lock(mu_);
        buffers_.push_back(std::make_unique<ThreadBuffer>(next_tid_++));
        buffer = buffers_.back().get();
    }
    return *buffer;
}

void TraceRecorder::set_thread_name(std::string name) {
    ThreadBuffer& buffer = local_buffer();
    std::lock_guard<std::mutex> lock(mu_);
    buffer.name = std::move(name);
}

void TraceRecorder::set_process_name(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    process_name_ = std::move(name);
}

void TraceRecorder::record(TraceEvent ev) {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    // Single producer per buffer: only this thread writes `count`, so the
    // plain load / release store pair publishes the slot to exporters.
    const std::size_t i = buffer.count.load(std::memory_order_relaxed);
    if (i >= buffer.events.size()) {
        buffer.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buffer.events[i] = std::move(ev);
    buffer.count.store(i + 1, std::memory_order_release);
}

void TraceRecorder::complete(const char* name, const char* cat,
                             std::uint64_t ts_ns, std::uint64_t dur_ns,
                             util::Json args) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.phase = 'X';
    ev.name = name;
    ev.cat = cat;
    ev.ts_ns = ts_ns;
    ev.dur_ns = dur_ns;
    ev.args = std::move(args);
    record(std::move(ev));
}

void TraceRecorder::instant(const char* name, const char* cat,
                            util::Json args) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.phase = 'i';
    ev.name = name;
    ev.cat = cat;
    ev.ts_ns = now_ns();
    ev.args = std::move(args);
    record(std::move(ev));
}

void TraceRecorder::instant_dyn(std::string name, const char* cat,
                                util::Json args) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.phase = 'i';
    ev.dyn_name = std::move(name);
    ev.cat = cat;
    ev.ts_ns = now_ns();
    ev.args = std::move(args);
    record(std::move(ev));
}

void TraceRecorder::counter(const char* name, double value) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.phase = 'C';
    ev.name = name;
    ev.cat = "counter";
    ev.ts_ns = now_ns();
    util::Json args = util::Json::object();
    args.set("value", value);
    ev.args = std::move(args);
    record(std::move(ev));
}

std::uint64_t TraceRecorder::recorded_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& b : buffers_)
        total += b->count.load(std::memory_order_acquire);
    return total;
}

std::uint64_t TraceRecorder::dropped_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& b : buffers_)
        total += b->dropped.load(std::memory_order_relaxed);
    return total;
}

util::Json TraceRecorder::to_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    util::Json events = util::Json::array();

    // Process metadata first, then one thread_name record per named track.
    {
        util::Json meta = util::Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", 1.0);
        meta.set("tid", 0.0);
        util::Json args = util::Json::object();
        args.set("name", process_name_);
        meta.set("args", std::move(args));
        events.push_back(std::move(meta));
    }

    std::uint64_t dropped = 0;
    for (const auto& buffer : buffers_) {
        dropped += buffer->dropped.load(std::memory_order_relaxed);
        const std::size_t n = buffer->count.load(std::memory_order_acquire);
        if (n == 0 && buffer->name.empty()) continue;
        {
            util::Json meta = util::Json::object();
            meta.set("name", "thread_name");
            meta.set("ph", "M");
            meta.set("pid", 1.0);
            meta.set("tid", double(buffer->tid));
            util::Json args = util::Json::object();
            args.set("name", buffer->name.empty()
                                 ? "thread-" + std::to_string(buffer->tid)
                                 : buffer->name);
            meta.set("args", std::move(args));
            events.push_back(std::move(meta));
        }
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent& ev = buffer->events[i];
            util::Json e = util::Json::object();
            e.set("name", ev.dyn_name.empty() ? std::string(ev.name)
                                              : ev.dyn_name);
            e.set("cat", std::string(ev.cat));
            e.set("ph", std::string(1, ev.phase));
            e.set("ts", double(ev.ts_ns) / 1000.0);  // microseconds
            if (ev.phase == 'X') e.set("dur", double(ev.dur_ns) / 1000.0);
            if (ev.phase == 'i') e.set("s", "t");  // thread-scoped marker
            e.set("pid", 1.0);
            e.set("tid", double(buffer->tid));
            if (!ev.args.is_null()) e.set("args", ev.args);
            events.push_back(std::move(e));
        }
    }

    util::Json root = util::Json::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", "ms");
    util::Json other = util::Json::object();
    other.set("format", "matador-trace");
    other.set("version", double(kTraceJsonVersion));
    other.set("process_name", process_name_);
    other.set("wall_anchor_us", double(wall_anchor_us()));
    other.set("events_dropped", double(dropped));
    root.set("otherData", std::move(other));
    return root;
}

void TraceRecorder::write_file(const std::string& path) const {
    util::write_file_atomic(path, to_json().dump(1) + "\n");
}

void TraceRecorder::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
        buffer->count.store(0, std::memory_order_release);
        buffer->dropped.store(0, std::memory_order_relaxed);
    }
}

void SpanGuard::close() {
    if (!active_) return;
    active_ = false;
    TraceEvent ev;
    ev.phase = 'X';
    ev.name = name_;
    ev.dyn_name = std::move(dyn_name_);
    ev.cat = cat_;
    ev.ts_ns = start_;
    ev.dur_ns = now_ns() - start_;
    ev.args = std::move(args_);
    TraceRecorder::instance().record(std::move(ev));
}

double TimedSpan::finish(util::Json args) {
    if (!done_) {
        done_ = true;
        dur_ns_ = now_ns() - start_;
        TraceRecorder& rec = TraceRecorder::instance();
        if (rec.enabled()) {
            TraceEvent ev;
            ev.phase = 'X';
            ev.name = name_;
            ev.dyn_name = std::move(dyn_name_);
            ev.cat = cat_;
            ev.ts_ns = start_;
            ev.dur_ns = dur_ns_;
            ev.args = std::move(args);
            rec.record(std::move(ev));
        }
    }
    return double(dur_ns_) * 1e-9;
}

}  // namespace matador::obs
