#include "obs/metrics.hpp"

#include <algorithm>

namespace matador::obs {

std::string series_name(const std::string& name, const Labels& labels) {
    if (labels.empty()) return name;
    std::string out = name + "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out += ",";
        out += labels[i].first + "=\"" + labels[i].second + "\"";
    }
    out += "}";
    return out;
}

std::atomic<std::uint64_t>& Counter::shard() {
    // Each thread sticks to one shard for its lifetime; 16 shards cover
    // any realistic worker-pool width without false sharing.
    static std::atomic<unsigned> next_slot{0};
    thread_local const unsigned slot =
        next_slot.fetch_add(1, std::memory_order_relaxed) % 16;
    return shards_[slot].v;
}

Histogram::Histogram(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {
    for (auto& s : ring_) s.store(0.0, std::memory_order_relaxed);
}

void Histogram::record(double v) {
    const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    ring_[i % ring_.size()].store(v, std::memory_order_relaxed);
    // CAS add keeps `sum` exact without requiring atomic<double>::fetch_add.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed))
        ;
}

std::size_t Histogram::samples() const {
    return std::size_t(
        std::min<std::uint64_t>(count(), ring_.size()));
}

std::vector<double> Histogram::ring_samples() const {
    const std::size_t n = samples();
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ring_[i].load(std::memory_order_relaxed);
    return out;
}

Histogram::Quantiles Histogram::quantiles() const {
    Quantiles q;
    std::vector<double> sorted = ring_samples();
    q.samples = sorted.size();
    if (sorted.empty()) return q;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const auto rank = [&](double p) {
        const std::size_t r = std::size_t(p * double(n - 1) + 0.5);
        return sorted[std::min(r, n - 1)];
    };
    q.p50 = rank(0.50);
    q.p95 = rank(0.95);
    q.p99 = rank(0.99);
    return q;
}

void Histogram::reset() {
    next_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    for (auto& s : ring_) s.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& series = counters_[series_name(name, labels)];
    if (!series.metric) {
        series.name = name;
        series.labels = labels;
        series.metric = std::make_unique<Counter>();
    }
    return *series.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& series = gauges_[series_name(name, labels)];
    if (!series.metric) {
        series.name = name;
        series.labels = labels;
        series.metric = std::make_unique<Gauge>();
    }
    return *series.metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& series = histograms_[series_name(name, labels)];
    if (!series.metric) {
        series.name = name;
        series.labels = labels;
        series.metric = std::make_unique<Histogram>(capacity);
    }
    return *series.metric;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, s] : counters_) s.metric->reset();
    for (auto& [key, s] : gauges_) s.metric->reset();
    for (auto& [key, s] : histograms_) s.metric->reset();
}

namespace {

util::Json labels_json(const Labels& labels) {
    util::Json j = util::Json::object();
    for (const auto& [k, v] : labels) j.set(k, v);
    return j;
}

}  // namespace

util::Json MetricsRegistry::to_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    util::Json root = util::Json::object();
    root.set("format", "matador-metrics");
    root.set("version", double(kMetricsJsonVersion));

    util::Json counters = util::Json::array();
    for (const auto& [key, s] : counters_) {
        util::Json e = util::Json::object();
        e.set("name", s.name);
        e.set("labels", labels_json(s.labels));
        e.set("value", double(s.metric->value()));
        counters.push_back(std::move(e));
    }
    root.set("counters", std::move(counters));

    util::Json gauges = util::Json::array();
    for (const auto& [key, s] : gauges_) {
        util::Json e = util::Json::object();
        e.set("name", s.name);
        e.set("labels", labels_json(s.labels));
        e.set("value", s.metric->value());
        gauges.push_back(std::move(e));
    }
    root.set("gauges", std::move(gauges));

    util::Json histograms = util::Json::array();
    for (const auto& [key, s] : histograms_) {
        util::Json e = util::Json::object();
        e.set("name", s.name);
        e.set("labels", labels_json(s.labels));
        e.set("count", double(s.metric->count()));
        e.set("sum", s.metric->sum());
        const auto q = s.metric->quantiles();
        e.set("p50", q.p50);
        e.set("p95", q.p95);
        e.set("p99", q.p99);
        util::Json samples = util::Json::array();
        for (const double v : s.metric->ring_samples())
            samples.push_back(v);
        e.set("samples", std::move(samples));
        histograms.push_back(std::move(e));
    }
    root.set("histograms", std::move(histograms));
    return root;
}

std::string MetricsRegistry::to_prometheus() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    const auto number = [](double v) { return util::Json(v).dump(); };

    std::string last_type_for;
    const auto type_line = [&](const std::string& name, const char* type) {
        if (name == last_type_for) return;
        out += "# TYPE " + name + " " + type + "\n";
        last_type_for = name;
    };

    for (const auto& [key, s] : counters_) {
        type_line(s.name, "counter");
        out += key + " " + number(double(s.metric->value())) + "\n";
    }
    for (const auto& [key, s] : gauges_) {
        type_line(s.name, "gauge");
        out += key + " " + number(s.metric->value()) + "\n";
    }
    for (const auto& [key, s] : histograms_) {
        type_line(s.name, "summary");
        const auto q = s.metric->quantiles();
        const auto quantile_series = [&](const char* p, double v) {
            Labels with = s.labels;
            with.emplace_back("quantile", p);
            out += series_name(s.name, with) + " " + number(v) + "\n";
        };
        quantile_series("0.5", q.p50);
        quantile_series("0.95", q.p95);
        quantile_series("0.99", q.p99);
        out += series_name(s.name + "_sum", s.labels) + " " +
               number(s.metric->sum()) + "\n";
        out += series_name(s.name + "_count", s.labels) + " " +
               number(double(s.metric->count())) + "\n";
    }
    return out;
}

}  // namespace matador::obs
