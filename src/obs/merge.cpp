#include "obs/merge.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace matador::obs {

namespace {

using util::Json;

void check_format(const Json& doc, const char* expected, const char* what) {
    const Json* other = &doc;
    if (expected == std::string("matador-trace")) {
        if (!doc.contains("otherData"))
            throw std::runtime_error(std::string(what) +
                                     ": not a matador trace document");
        other = &doc.at("otherData");
    }
    if (!other->contains("format") ||
        other->at("format").as_string() != expected)
        throw std::runtime_error(std::string(what) + ": expected a " +
                                 expected + " document");
}

}  // namespace

Json merge_traces(const std::vector<Json>& traces,
                  const std::vector<std::string>& names) {
    // Align on the earliest wall anchor so every other timeline shifts
    // forward by its real start offset.
    double min_anchor = 0.0;
    bool have_anchor = false;
    for (const Json& t : traces) {
        check_format(t, "matador-trace", "merge_traces");
        const double anchor = t.at("otherData").at("wall_anchor_us").as_double();
        if (!have_anchor || anchor < min_anchor) {
            min_anchor = anchor;
            have_anchor = true;
        }
    }

    Json events = Json::array();
    double dropped = 0.0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        const Json& t = traces[i];
        const Json& other = t.at("otherData");
        const double shift = other.at("wall_anchor_us").as_double() - min_anchor;
        const double pid = double(i + 1);
        const std::string name = i < names.size() && !names[i].empty()
                                     ? names[i]
                                     : other.at("process_name").as_string();
        dropped += other.at("events_dropped").as_double();

        for (const Json& ev : t.at("traceEvents").as_array()) {
            Json out = Json::object();
            for (const auto& [key, value] : ev.as_object()) {
                if (key == "pid")
                    out.set("pid", pid);
                else if (key == "ts")
                    out.set("ts", value.as_double() + shift);
                else if (key == "args" && ev.at("ph").as_string() == "M" &&
                         ev.at("name").as_string() == "process_name") {
                    Json args = Json::object();
                    args.set("name", name);
                    out.set("args", std::move(args));
                } else {
                    out.set(key, value);
                }
            }
            events.push_back(std::move(out));
        }
    }

    Json root = Json::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", "ms");
    Json other = Json::object();
    other.set("format", "matador-trace");
    other.set("version", double(TraceRecorder::kTraceJsonVersion));
    other.set("process_name", "matador-merged");
    other.set("wall_anchor_us", min_anchor);
    other.set("events_dropped", dropped);
    other.set("merged_from", double(traces.size()));
    root.set("otherData", std::move(other));
    return root;
}

namespace {

struct MergedHistogram {
    Json name;
    Json labels;
    double count = 0.0;
    double sum = 0.0;
    std::vector<double> samples;
};

std::string entry_key(const Json& e) {
    Labels labels;
    for (const auto& [k, v] : e.at("labels").as_object())
        labels.emplace_back(k, v.as_string());
    return series_name(e.at("name").as_string(), labels);
}

}  // namespace

Json merge_metrics(const std::vector<Json>& docs) {
    // Insertion-ordered accumulation keyed by rendered series name.
    std::vector<std::string> counter_order, gauge_order, histogram_order;
    std::map<std::string, std::pair<Json, double>> counters;  // entry, sum
    std::map<std::string, std::pair<Json, double>> gauges;    // entry, max
    std::map<std::string, MergedHistogram> histograms;

    for (const Json& doc : docs) {
        check_format(doc, "matador-metrics", "merge_metrics");
        for (const Json& e : doc.at("counters").as_array()) {
            const std::string key = entry_key(e);
            auto it = counters.find(key);
            if (it == counters.end()) {
                counter_order.push_back(key);
                it = counters.emplace(key, std::make_pair(e, 0.0)).first;
            }
            it->second.second += e.at("value").as_double();
        }
        for (const Json& e : doc.at("gauges").as_array()) {
            const std::string key = entry_key(e);
            auto it = gauges.find(key);
            if (it == gauges.end()) {
                gauge_order.push_back(key);
                it = gauges.emplace(key, std::make_pair(e, 0.0)).first;
            }
            it->second.second =
                std::max(it->second.second, e.at("value").as_double());
        }
        for (const Json& e : doc.at("histograms").as_array()) {
            const std::string key = entry_key(e);
            auto it = histograms.find(key);
            if (it == histograms.end()) {
                histogram_order.push_back(key);
                MergedHistogram h;
                h.name = e.at("name");
                h.labels = e.at("labels");
                it = histograms.emplace(key, std::move(h)).first;
            }
            it->second.count += e.at("count").as_double();
            it->second.sum += e.at("sum").as_double();
            for (const Json& s : e.at("samples").as_array())
                it->second.samples.push_back(s.as_double());
        }
    }

    Json root = Json::object();
    root.set("format", "matador-metrics");
    root.set("version", double(MetricsRegistry::kMetricsJsonVersion));

    Json counters_out = Json::array();
    for (const auto& key : counter_order) {
        const auto& [entry, sum] = counters.at(key);
        Json e = Json::object();
        e.set("name", entry.at("name"));
        e.set("labels", entry.at("labels"));
        e.set("value", sum);
        counters_out.push_back(std::move(e));
    }
    root.set("counters", std::move(counters_out));

    Json gauges_out = Json::array();
    for (const auto& key : gauge_order) {
        const auto& [entry, max_v] = gauges.at(key);
        Json e = Json::object();
        e.set("name", entry.at("name"));
        e.set("labels", entry.at("labels"));
        e.set("value", max_v);
        gauges_out.push_back(std::move(e));
    }
    root.set("gauges", std::move(gauges_out));

    Json histograms_out = Json::array();
    for (const auto& key : histogram_order) {
        MergedHistogram& h = histograms.at(key);
        Json e = Json::object();
        e.set("name", h.name);
        e.set("labels", h.labels);
        e.set("count", h.count);
        e.set("sum", h.sum);
        // Exact nearest-rank quantiles over the union of ring samples
        // (each shard kept its most recent 4096; the union is what the
        // whole sweep observed, ring truncation aside).
        std::sort(h.samples.begin(), h.samples.end());
        const std::size_t n = h.samples.size();
        const auto rank = [&](double p) {
            if (n == 0) return 0.0;
            const std::size_t r = std::size_t(p * double(n - 1) + 0.5);
            return h.samples[std::min(r, n - 1)];
        };
        e.set("p50", rank(0.50));
        e.set("p95", rank(0.95));
        e.set("p99", rank(0.99));
        Json samples = Json::array();
        for (const double v : h.samples) samples.push_back(v);
        e.set("samples", std::move(samples));
        histograms_out.push_back(std::move(e));
    }
    root.set("histograms", std::move(histograms_out));
    return root;
}

std::string format_metrics_text(const util::Json& doc) {
    check_format(doc, "matador-metrics", "format_metrics_text");
    std::string out;
    char line[256];

    const auto label_suffix = [](const Json& e) {
        std::string s;
        for (const auto& [k, v] : e.at("labels").as_object())
            s += (s.empty() ? "" : " ") + k + "=" + v.as_string();
        return s.empty() ? s : " {" + s + "}";
    };

    const auto& counters = doc.at("counters").as_array();
    const auto& gauges = doc.at("gauges").as_array();
    const auto& histograms = doc.at("histograms").as_array();

    if (!counters.empty()) out += "counters:\n";
    for (const Json& e : counters) {
        std::snprintf(line, sizeof line, "  %-40s %14.0f\n",
                      (e.at("name").as_string() + label_suffix(e)).c_str(),
                      e.at("value").as_double());
        out += line;
    }
    if (!gauges.empty()) out += "gauges:\n";
    for (const Json& e : gauges) {
        std::snprintf(line, sizeof line, "  %-40s %14.3f\n",
                      (e.at("name").as_string() + label_suffix(e)).c_str(),
                      e.at("value").as_double());
        out += line;
    }
    if (!histograms.empty()) out += "histograms:\n";
    for (const Json& e : histograms) {
        std::snprintf(line, sizeof line,
                      "  %-40s n=%-8.0f p50=%-10.1f p95=%-10.1f p99=%.1f\n",
                      (e.at("name").as_string() + label_suffix(e)).c_str(),
                      e.at("count").as_double(), e.at("p50").as_double(),
                      e.at("p95").as_double(), e.at("p99").as_double());
        out += line;
    }
    if (out.empty()) out = "no metrics recorded\n";
    return out;
}

std::string format_metrics_prometheus(const util::Json& doc) {
    check_format(doc, "matador-metrics", "format_metrics_prometheus");
    std::string out;
    const auto number = [](double v) { return Json(v).dump(); };

    const auto entry_labels = [](const Json& e) {
        Labels labels;
        for (const auto& [k, v] : e.at("labels").as_object())
            labels.emplace_back(k, v.as_string());
        return labels;
    };
    std::string last_type_for;
    const auto type_line = [&](const std::string& name, const char* type) {
        if (name == last_type_for) return;
        out += "# TYPE " + name + " " + type + "\n";
        last_type_for = name;
    };

    for (const Json& e : doc.at("counters").as_array()) {
        const std::string name = e.at("name").as_string();
        type_line(name, "counter");
        out += series_name(name, entry_labels(e)) + " " +
               number(e.at("value").as_double()) + "\n";
    }
    for (const Json& e : doc.at("gauges").as_array()) {
        const std::string name = e.at("name").as_string();
        type_line(name, "gauge");
        out += series_name(name, entry_labels(e)) + " " +
               number(e.at("value").as_double()) + "\n";
    }
    for (const Json& e : doc.at("histograms").as_array()) {
        const std::string name = e.at("name").as_string();
        const Labels labels = entry_labels(e);
        type_line(name, "summary");
        const auto quantile_series = [&](const char* p, const char* field) {
            Labels with = labels;
            with.emplace_back("quantile", p);
            out += series_name(name, with) + " " +
                   number(e.at(field).as_double()) + "\n";
        };
        quantile_series("0.5", "p50");
        quantile_series("0.95", "p95");
        quantile_series("0.99", "p99");
        out += series_name(name + "_sum", labels) + " " +
               number(e.at("sum").as_double()) + "\n";
        out += series_name(name + "_count", labels) + " " +
               number(e.at("count").as_double()) + "\n";
    }
    return out;
}

}  // namespace matador::obs
