// The one monotonic clock every piece of telemetry shares.
//
// StageRecord wall-clocks, trace-span timestamps, serve latencies, and
// shard heartbeats all read the same steady_clock through this header, so
// a stage's reported seconds and its span's duration in the Perfetto view
// are the same number - no drift between report and trace.  Timestamps
// are nanoseconds since a per-process epoch (the first call in the
// process); `wall_anchor_us` pins that epoch to the system clock once, so
// traces from different processes (sweep shards) can be shifted onto one
// timeline at merge time.
#pragma once

#include <chrono>
#include <cstdint>

namespace matador::obs {

namespace detail {
inline std::chrono::steady_clock::time_point process_epoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}
}  // namespace detail

/// Monotonic nanoseconds since the process epoch.
inline std::uint64_t now_ns() {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() -
                             detail::process_epoch())
                             .count());
}

/// System-clock microseconds captured once, at the process epoch.  Two
/// processes' trace timelines are aligned by the difference of their
/// anchors (coarse - the clocks are sampled independently - but plenty to
/// lay shard tracks side by side).
std::uint64_t wall_anchor_us();

/// Drop-in replacement for the old util::Stopwatch, on the trace clock.
class Timer {
public:
    Timer() : start_(now_ns()) {}

    void restart() { start_ = now_ns(); }

    /// Elapsed seconds since construction / restart.
    double seconds() const { return double(now_ns() - start_) * 1e-9; }

    /// Elapsed milliseconds.
    double millis() const { return seconds() * 1e3; }

    /// The raw start timestamp (ns since the process epoch).
    std::uint64_t start_ns() const { return start_; }

private:
    std::uint64_t start_;
};

}  // namespace matador::obs
