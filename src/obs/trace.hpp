// Low-overhead span tracing with Chrome trace-event JSON export.
//
// Every thread that records gets its own fixed-capacity event buffer, so
// the hot path is: one relaxed atomic load (the runtime enable flag), two
// steady_clock reads, and a single-producer append - no locks, no
// allocation after the buffer exists.  The registry mutex is taken only
// when a thread records its first event and at export time; an export can
// run while traffic continues (it reads each buffer up to its published
// count, and entries below that count are immutable).  A full buffer
// drops further events and counts them - tracing is best-effort telemetry,
// never backpressure.
//
// Exported JSON is the Chrome trace-event format: load the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing and every named thread is
// a track of nested spans.  `dist::merge_traces` stitches the per-shard
// files of a distributed sweep into one multi-process timeline.
//
// Instrumentation macros (compiled out entirely under
// MATADOR_OBS_NO_TRACING; see the MATADOR_DISABLE_TRACING CMake option):
//
//   TRACE_SPAN("score-block", "infer");          RAII scope -> one span
//   TRACE_INSTANT("steal", "shard");             zero-duration marker
//   TRACE_COUNTER("queue_depth", depth);         a plotted counter track
//
// `TimedSpan` is the instrumented replacement for the old util::Stopwatch:
// it always measures (callers keep their wall-clock numbers even when
// tracing is off) and emits the span only when tracing is on, from the
// same two clock reads - the StageRecord seconds and the Perfetto span are
// one measurement.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "util/json.hpp"

namespace matador::obs {

/// One recorded event.  `name` points at a string literal on the cheap
/// path; `dyn_name` (used when non-empty) carries owned names like
/// "point 7".
struct TraceEvent {
    char phase = 'X';  ///< 'X' complete, 'i' instant, 'C' counter
    const char* name = "";
    std::string dyn_name;
    const char* cat = "";
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    util::Json args;  ///< kNull = no args member emitted
};

class TraceRecorder {
public:
    /// The process-wide recorder (tracing is inherently process-global:
    /// one timeline per process, stitched across processes at merge time).
    static TraceRecorder& instance();

    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Name the calling thread's track in the exported timeline.
    void set_thread_name(std::string name);
    /// Name this process's track group (default "matador").
    void set_process_name(std::string name);

    /// Append one event to the calling thread's buffer.  No-ops (and does
    /// not touch the clock) when tracing is disabled.
    void record(TraceEvent ev);

    /// Convenience wrappers; all check `enabled()` first.
    void complete(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns, util::Json args = {});
    void instant(const char* name, const char* cat, util::Json args = {});
    void instant_dyn(std::string name, const char* cat, util::Json args = {});
    void counter(const char* name, double value);

    /// Events recorded / dropped (buffer-full) so far, all threads.
    std::uint64_t recorded_total() const;
    std::uint64_t dropped_total() const;

    /// The Chrome trace-event document for everything recorded so far.
    /// Safe to call while other threads keep recording.
    static constexpr unsigned kTraceJsonVersion = 1;
    util::Json to_json() const;
    /// Atomically write `to_json()` to `path`.
    void write_file(const std::string& path) const;

    /// Drop every recorded event and re-arm empty buffers.  Only call at a
    /// quiet point (process start, post-fork shard start, test setup).
    void reset();

    /// Fixed per-thread buffer capacity, in events.
    static constexpr std::size_t kEventsPerThread = 1u << 16;

private:
    struct ThreadBuffer {
        explicit ThreadBuffer(unsigned id) : events(kEventsPerThread), tid(id) {}
        std::vector<TraceEvent> events;    ///< fixed capacity, never resized
        std::atomic<std::size_t> count{0};  ///< published events (release)
        std::atomic<std::uint64_t> dropped{0};
        unsigned tid;
        std::string name;  ///< guarded by the registry mutex
    };

    TraceRecorder() = default;
    ThreadBuffer& local_buffer();

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;  ///< buffer list + thread/process names
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    unsigned next_tid_ = 1;
    std::string process_name_ = "matador";
};

/// RAII span for the TRACE_SPAN macro.  When tracing is disabled the
/// constructor is one relaxed atomic load and the destructor one branch.
class SpanGuard {
public:
    SpanGuard(const char* name, const char* cat)
        : name_(name), cat_(cat), active_(TraceRecorder::instance().enabled()) {
        if (active_) start_ = now_ns();
    }
    SpanGuard(std::string name, const char* cat)
        : name_(""), cat_(cat), active_(TraceRecorder::instance().enabled()) {
        if (active_) {
            dyn_name_ = std::move(name);
            start_ = now_ns();
        }
    }
    ~SpanGuard() { close(); }

    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

    /// Attach an args object, emitted with the span when it closes.
    void set_args(util::Json args) {
        if (active_) args_ = std::move(args);
    }

    /// End the span now (idempotent; the destructor calls it too).
    void close();

private:
    const char* name_;
    std::string dyn_name_;
    const char* cat_;
    util::Json args_;
    std::uint64_t start_ = 0;
    bool active_;
};

/// Measuring span: the util::Stopwatch replacement for code that reports
/// wall-clock numbers.  Always reads the clock; emits the trace span (from
/// the same reads) only when tracing is enabled.
class TimedSpan {
public:
    TimedSpan(const char* name, const char* cat)
        : name_(name), cat_(cat), start_(now_ns()) {}
    TimedSpan(std::string name, const char* cat)
        : name_(""), dyn_name_(std::move(name)), cat_(cat), start_(now_ns()) {}
    ~TimedSpan() {
        if (!done_) finish();
    }

    TimedSpan(const TimedSpan&) = delete;
    TimedSpan& operator=(const TimedSpan&) = delete;

    /// Elapsed seconds so far (the span stays open).
    double seconds() const { return double(now_ns() - start_) * 1e-9; }

    /// Close the span and return its duration in seconds - the one number
    /// both the report and the trace carry.  Idempotent.
    double finish(util::Json args = {});

private:
    const char* name_;
    std::string dyn_name_;
    const char* cat_;
    std::uint64_t start_;
    std::uint64_t dur_ns_ = 0;
    bool done_ = false;
};

/// Name the calling thread's track (no-op until it records with tracing
/// enabled is fine too - the name sticks to the thread's buffer).
inline void set_thread_name(std::string name) {
    TraceRecorder::instance().set_thread_name(std::move(name));
}

#define MATADOR_OBS_CAT2(a, b) a##b
#define MATADOR_OBS_CAT(a, b) MATADOR_OBS_CAT2(a, b)

#ifndef MATADOR_OBS_NO_TRACING
#define TRACE_SPAN(name, cat) \
    ::matador::obs::SpanGuard MATADOR_OBS_CAT(obs_span_, __LINE__)(name, cat)
#define TRACE_INSTANT(name, cat) \
    ::matador::obs::TraceRecorder::instance().instant(name, cat)
#define TRACE_COUNTER(name, value) \
    ::matador::obs::TraceRecorder::instance().counter(name, double(value))
#else
#define TRACE_SPAN(name, cat) ((void)0)
#define TRACE_INSTANT(name, cat) ((void)0)
#define TRACE_COUNTER(name, value) ((void)0)
#endif

}  // namespace matador::obs
