// Named counters / gauges / histograms behind sharded atomics.
//
// The registry is the process's one metrics namespace: pipeline cache
// hits, clause evaluations, serve latencies, shard progress all register
// here and export together as a versioned JSON document or Prometheus
// text.  Handles returned by counter()/gauge()/histogram() are stable for
// the life of the process (reset() zeroes values, never invalidates
// references), so hot paths resolve their series once and then touch only
// atomics:
//
//   * Counter  - adds go to one of 16 cache-line-padded shards picked per
//     thread, so concurrent writers never bounce one line; value() sums.
//   * Gauge    - a single atomic double, last-write-wins.
//   * Histogram - a fixed ring of the most recent samples (lock-free:
//     fetch_add slot index + relaxed store) with nearest-rank quantiles
//     computed at snapshot time.  Deliberately the same capacity and rank
//     formula as the serve::LatencyRing it replaces, so percentiles are
//     bit-identical on identical sample streams.
//
// Series identity is `name` plus optional labels, rendered Prometheus
// style: `pipeline_cache_hits{stage="train",tier="disk"}`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace matador::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

/// `name{k="v",...}` (just `name` without labels).
std::string series_name(const std::string& name, const Labels& labels);

class Counter {
public:
    void add(std::uint64_t n = 1) {
        shard().fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const {
        std::uint64_t total = 0;
        for (const auto& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }
    void reset() {
        for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };
    std::atomic<std::uint64_t>& shard();
    std::array<Shard, 16> shards_{};
};

class Gauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { set(0.0); }

private:
    std::atomic<double> v_{0.0};
};

/// Fixed ring of the most recent samples; quantiles over whatever the ring
/// currently holds.  Thread-safe and lock-free on the record path.
class Histogram {
public:
    explicit Histogram(std::size_t capacity = 4096);

    void record(double v);

    /// Samples currently in the ring: min(total recorded, capacity).
    std::size_t samples() const;
    /// Total ever recorded (keeps counting past the ring capacity).
    std::uint64_t count() const {
        return next_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    struct Quantiles {
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        std::size_t samples = 0;
    };
    /// Nearest-rank quantiles over the ring (zeros when empty); the exact
    /// serve::LatencyRing formula: rank = floor(p * (n - 1) + 0.5).
    Quantiles quantiles() const;

    /// Copy of the ring's current samples (unordered across writers).
    std::vector<double> ring_samples() const;

    void reset();

private:
    std::vector<std::atomic<double>> ring_;
    std::atomic<std::uint64_t> next_{0};
    std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The process-wide registry nearly all instrumentation uses.
    static MetricsRegistry& global();

    /// Find-or-register; the returned reference stays valid forever.
    Counter& counter(const std::string& name, const Labels& labels = {});
    Gauge& gauge(const std::string& name, const Labels& labels = {});
    Histogram& histogram(const std::string& name, const Labels& labels = {},
                         std::size_t capacity = 4096);

    /// Zero every metric's value; registrations (and outstanding handles)
    /// survive.  Used at post-fork shard start and in tests.
    void reset();

    /// Versioned JSON export ("matador-metrics" v1).  Histograms include
    /// their raw ring samples so cross-shard merges can recompute exact
    /// quantiles.
    static constexpr unsigned kMetricsJsonVersion = 1;
    util::Json to_json() const;

    /// Prometheus text exposition (counters, gauges, summaries).
    std::string to_prometheus() const;

private:
    template <typename T>
    struct Series {
        std::string name;
        Labels labels;
        std::unique_ptr<T> metric;
    };

    mutable std::mutex mu_;
    std::map<std::string, Series<Counter>> counters_;
    std::map<std::string, Series<Gauge>> gauges_;
    std::map<std::string, Series<Histogram>> histograms_;
};

}  // namespace matador::obs
