// Self-checking testbench generation (the auto-debug flow of Fig. 6).
//
// MATADOR validates throughput on the board by polling AXI-stream
// transactions through auto-generated testbenches and ILA debug cores.
// Here we generate the equivalent self-checking Verilog testbench: it
// streams packetized test vectors into matador_top at one beat per cycle,
// collects classifications, compares them with the golden predictions and
// prints MATADOR-TB PASS/FAIL plus the measured initiation interval and
// first-result latency.  The file is plain Verilog-2001 and runs under any
// event-driven simulator (iverilog/Verilator/XSim); this repository's own
// cycle-accurate architecture simulator reproduces the same measurements
// natively (src/sim).
#pragma once

#include <string>
#include <vector>

#include "model/trained_model.hpp"
#include "rtl/generators.hpp"
#include "util/bitvector.hpp"

namespace matador::rtl {

/// Generate the testbench text for `design`, streaming `inputs` and
/// checking against the model's own predictions.
std::string generate_testbench(const RtlDesign& design,
                               const model::TrainedModel& m,
                               const std::vector<util::BitVector>& inputs);

/// Generate a comment-documented ILA (integrated logic analyzer) stub that
/// taps the AXI-stream handshake and the result interface, mirroring the
/// debug cores MATADOR inserts for on-board polling.
std::string generate_ila_stub(const RtlDesign& design);

}  // namespace matador::rtl
