#include "rtl/hcb_builder.hpp"

#include <stdexcept>

#include "logic/aig_simulate.hpp"

namespace matador::rtl {

using logic::Aig;
using logic::Lit;
using model::PacketPlan;
using model::TrainedModel;

std::vector<HcbNetlist> build_hcbs(const TrainedModel& m, const PacketPlan& plan,
                                   bool strash) {
    const ClauseSchedule sched = schedule_clauses(m, plan);
    const std::size_t cpc = m.clauses_per_class();

    std::vector<HcbNetlist> hcbs;
    hcbs.reserve(plan.num_packets());

    for (std::size_t k = 0; k < plan.num_packets(); ++k) {
        HcbNetlist h{HcbSpec{}, Aig(strash)};
        h.spec.packet = k;
        h.spec.lo = plan.packet_lo(k);
        h.spec.hi = plan.packet_hi(k);

        // Partition live clauses into active vs passthrough for this packet.
        for (auto flat : sched.live_clauses) {
            const auto& cl = m.clause(flat / cpc, flat % cpc);
            const bool active = cl.include_pos.slice(h.spec.lo, h.spec.hi).any() ||
                                cl.include_neg.slice(h.spec.lo, h.spec.hi).any();
            if (active) {
                h.spec.active_clauses.push_back(flat);
                h.spec.has_chain_input.push_back(sched.first_active_packet[flat] < k);
            } else if (sched.first_active_packet[flat] < k &&
                       sched.last_active_packet[flat] > k) {
                // Mid-stream wire-through: value already live, more to come.
                h.spec.passthrough_clauses.push_back(flat);
            }
        }

        // PIs: packet bits first ...
        const std::size_t packet_bits = h.spec.hi - h.spec.lo;
        std::vector<Lit> bit_lit(packet_bits);
        for (std::size_t b = 0; b < packet_bits; ++b) bit_lit[b] = h.aig.create_pi();
        // ... then chain inputs for the active clauses that need one.
        std::vector<Lit> chain_lit(h.spec.active_clauses.size(), logic::kConst1);
        for (std::size_t i = 0; i < h.spec.active_clauses.size(); ++i)
            if (h.spec.has_chain_input[i]) chain_lit[i] = h.aig.create_pi();

        // One partial-clause AND cone per active clause.  Literals are
        // folded left-deep in sorted feature order so clauses sharing a
        // literal prefix share AND nodes under strash (the clause-level
        // expression sharing of Fig. 3); the per-clause chain input is
        // ANDed last to keep those shared prefixes intact.
        for (std::size_t i = 0; i < h.spec.active_clauses.size(); ++i) {
            const auto flat = h.spec.active_clauses[i];
            const auto& cl = m.clause(flat / cpc, flat % cpc);
            Lit acc = logic::kConst1;
            for (std::size_t f = h.spec.lo; f < h.spec.hi; ++f) {
                if (cl.include_pos.get(f))
                    acc = h.aig.create_and(acc, bit_lit[f - h.spec.lo]);
                if (cl.include_neg.get(f))
                    acc = h.aig.create_and(acc, logic::lit_not(bit_lit[f - h.spec.lo]));
            }
            if (h.spec.has_chain_input[i]) acc = h.aig.create_and(acc, chain_lit[i]);
            h.aig.add_po(acc);
        }
        hcbs.push_back(std::move(h));
    }
    return hcbs;
}

std::vector<bool> evaluate_hcb(const HcbNetlist& hcb, const util::BitVector& x,
                               const std::vector<bool>& chain_in) {
    if (chain_in.size() != hcb.spec.active_clauses.size())
        throw std::invalid_argument("evaluate_hcb: chain size mismatch");

    std::vector<bool> pi_values;
    pi_values.reserve(hcb.aig.num_pis());
    for (std::size_t f = hcb.spec.lo; f < hcb.spec.hi; ++f)
        pi_values.push_back(x.get(f));
    for (std::size_t i = 0; i < chain_in.size(); ++i)
        if (hcb.spec.has_chain_input[i]) pi_values.push_back(chain_in[i]);

    std::vector<std::uint64_t> patterns(pi_values.size());
    for (std::size_t i = 0; i < pi_values.size(); ++i)
        patterns[i] = pi_values[i] ? ~std::uint64_t{0} : 0;

    std::vector<std::uint64_t> words = logic::simulate(hcb.aig, patterns);
    std::vector<bool> out(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) out[i] = words[i] & 1u;
    return out;
}

}  // namespace matador::rtl
