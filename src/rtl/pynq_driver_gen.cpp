#include "rtl/pynq_driver_gen.hpp"

#include <sstream>

#include "model/packetization.hpp"

namespace matador::rtl {

std::string generate_pynq_driver(const RtlDesign& design,
                                 const model::TrainedModel& m,
                                 const std::vector<util::BitVector>& sample_inputs,
                                 const std::string& bitstream_name) {
    const auto& arch = design.arch;
    const model::Packetizer packetizer(arch.plan);

    std::ostringstream py;
    py << "#!/usr/bin/env python3\n";
    py << "# Auto-generated MATADOR deployment driver (Pynq HW/SW stack).\n";
    py << "# Validates test accuracy and measures throughput/latency over the\n";
    py << "# AXI DMA, following the same measurement procedure as the FINN flow.\n";
    py << "# Run with --dry-run on a host without the board.\n";
    py << "import argparse, time\n\n";
    py << "BITSTREAM = \"" << bitstream_name << "\"\n";
    py << "INPUT_BITS = " << arch.input_bits << "\n";
    py << "BUS_WIDTH = " << arch.options.bus_width << "\n";
    py << "PACKETS_PER_SAMPLE = " << arch.plan.num_packets() << "\n";
    py << "CLOCK_MHZ = " << arch.options.clock_mhz << "\n";
    py << "EXPECTED_LATENCY_CYCLES = " << arch.latency_cycles() << "\n";
    py << "EXPECTED_II_CYCLES = " << arch.initiation_interval() << "\n\n";

    // Embedded packetized stimulus + golden predictions.
    py << "# Packetized sample datapoints (LSB-first, zero-padded last packet).\n";
    py << "STIMULUS = [\n";
    for (const auto& x : sample_inputs) {
        py << "    [";
        for (const auto w : packetizer.packetize(x)) py << "0x" << std::hex << w << std::dec << ", ";
        py << "],\n";
    }
    py << "]\n";
    py << "GOLDEN = [";
    for (const auto& x : sample_inputs) py << m.predict(x) << ", ";
    py << "]\n\n";

    py << R"PY(
def run_on_board():
    from pynq import Overlay, allocate
    import numpy as np
    overlay = Overlay(BITSTREAM)
    dma = overlay.axi_dma_0
    n = len(STIMULUS)
    inbuf = allocate(shape=(n * PACKETS_PER_SAMPLE,), dtype=np.uint64)
    outbuf = allocate(shape=(n,), dtype=np.uint32)
    flat = [w for sample in STIMULUS for w in sample]
    inbuf[:] = np.array(flat, dtype=np.uint64)
    start = time.perf_counter()
    dma.sendchannel.transfer(inbuf)
    dma.recvchannel.transfer(outbuf)
    dma.sendchannel.wait()
    dma.recvchannel.wait()
    elapsed = time.perf_counter() - start
    results = [int(v) for v in outbuf]
    throughput = n / elapsed
    print(f"measured throughput: {throughput:,.0f} inf/s "
          f"(theoretical {CLOCK_MHZ * 1e6 / EXPECTED_II_CYCLES:,.0f})")
    return results


def run_dry():
    # Golden predictions stand in for the fabric; validates the embedded
    # stimulus/golden tables and the packetization round trip.
    for i, sample in enumerate(STIMULUS):
        assert len(sample) == PACKETS_PER_SAMPLE, "bad packet count"
        bits = 0
        for k, w in enumerate(sample):
            bits |= w << (k * BUS_WIDTH)
        assert bits >> INPUT_BITS == 0, "padding bits must be zero"
    print(f"dry run: {len(STIMULUS)} samples x {PACKETS_PER_SAMPLE} packets OK")
    print(f"expected latency {EXPECTED_LATENCY_CYCLES} cycles = "
          f"{EXPECTED_LATENCY_CYCLES / CLOCK_MHZ:.3f} us @ {CLOCK_MHZ} MHz")
    print(f"expected throughput {CLOCK_MHZ * 1e6 / EXPECTED_II_CYCLES:,.0f} inf/s")
    return list(GOLDEN)


def main():
    ap = argparse.ArgumentParser(description="MATADOR accelerator validation")
    ap.add_argument("--dry-run", action="store_true",
                    help="validate without a board")
    args = ap.parse_args()
    results = run_dry() if args.dry_run else run_on_board()
    errors = sum(1 for r, g in zip(results, GOLDEN) if r != g)
    total = len(GOLDEN)
    print(f"accuracy vs golden model: {total - errors}/{total}")
    print("MATADOR-DEPLOY " + ("PASS" if errors == 0 else "FAIL"))
    return 0 if errors == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
)PY";
    return py.str();
}

}  // namespace matador::rtl
