#include "rtl/verilog_parser.hpp"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace matador::rtl {

namespace {

using logic::Aig;
using logic::Lit;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
    kIdent, kNumber, kBitConst,  // 1'b0 / 1'b1
    kLParen, kRParen, kLBracket, kRBracket,
    kComma, kSemi, kColon, kAssignEq,
    kTilde, kAmp, kPipe, kCaret,
    kEnd,
};

struct Token {
    Tok kind;
    std::string text;  // ident text or number digits
    int line;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : s_(text) { advance(); }

    const Token& peek() const { return cur_; }
    Token next() {
        Token t = cur_;
        advance();
        return t;
    }

    [[noreturn]] void fail(const std::string& msg) const {
        throw std::runtime_error("verilog parse error (line " +
                                 std::to_string(cur_.line) + "): " + msg);
    }

private:
    void advance() {
        skip_space_and_comments();
        cur_.line = line_;
        if (pos_ >= s_.size()) {
            cur_ = {Tok::kEnd, "", line_};
            return;
        }
        const char c = s_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
            std::size_t b = pos_;
            while (pos_ < s_.size() &&
                   (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '_' || s_[pos_] == '$'))
                ++pos_;
            cur_ = {Tok::kIdent, s_.substr(b, pos_ - b), line_};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t b = pos_;
            while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
            // Sized constant? Only 1'b0 / 1'b1 appear in the subset.
            if (pos_ + 2 < s_.size() && s_[pos_] == '\'' && s_[pos_ + 1] == 'b') {
                const std::string width = s_.substr(b, pos_ - b);
                const char bit = s_[pos_ + 2];
                if (width != "1" || (bit != '0' && bit != '1'))
                    throw std::runtime_error(
                        "verilog parse error (line " + std::to_string(line_) +
                        "): only 1'b0/1'b1 constants supported");
                pos_ += 3;
                cur_ = {Tok::kBitConst, std::string(1, bit), line_};
                return;
            }
            cur_ = {Tok::kNumber, s_.substr(b, pos_ - b), line_};
            return;
        }
        ++pos_;
        switch (c) {
            case '(': cur_ = {Tok::kLParen, "(", line_}; return;
            case ')': cur_ = {Tok::kRParen, ")", line_}; return;
            case '[': cur_ = {Tok::kLBracket, "[", line_}; return;
            case ']': cur_ = {Tok::kRBracket, "]", line_}; return;
            case ',': cur_ = {Tok::kComma, ",", line_}; return;
            case ';': cur_ = {Tok::kSemi, ";", line_}; return;
            case ':': cur_ = {Tok::kColon, ":", line_}; return;
            case '=': cur_ = {Tok::kAssignEq, "=", line_}; return;
            case '~': cur_ = {Tok::kTilde, "~", line_}; return;
            case '&': cur_ = {Tok::kAmp, "&", line_}; return;
            case '|': cur_ = {Tok::kPipe, "|", line_}; return;
            case '^': cur_ = {Tok::kCaret, "^", line_}; return;
            default:
                throw std::runtime_error("verilog parse error (line " +
                                         std::to_string(line_) +
                                         "): unexpected character '" + c + "'");
        }
    }

    void skip_space_and_comments() {
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
                while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
            } else if (c == '(' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '*') {
                // (* attribute *) - skip to the closing *)
                pos_ += 2;
                while (pos_ + 1 < s_.size() &&
                       !(s_[pos_] == '*' && s_[pos_ + 1] == ')')) {
                    if (s_[pos_] == '\n') ++line_;
                    ++pos_;
                }
                pos_ += 2;
            } else {
                break;
            }
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Token cur_{Tok::kEnd, "", 1};
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct SignalInfo {
    int width = 1;
    bool is_output = false;
    std::vector<Lit> bits;  // current driver literal per bit (kInvalid until assigned)
};

constexpr Lit kUnassigned = 0xffffffffu;

class Parser {
public:
    explicit Parser(const std::string& text, bool strash) : lex_(text) {
        out_.aig = logic::Aig(strash);
    }

    ParsedModule run() {
        expect_ident("module");
        out_.name = expect(Tok::kIdent).text;
        expect(Tok::kLParen);
        parse_port_list();
        expect(Tok::kSemi);
        while (true) {
            const Token& t = lex_.peek();
            if (t.kind == Tok::kIdent && t.text == "endmodule") {
                lex_.next();
                break;
            }
            if (t.kind == Tok::kIdent && t.text == "wire") {
                parse_wire_decl();
            } else if (t.kind == Tok::kIdent && t.text == "assign") {
                parse_assign();
            } else if (t.kind == Tok::kEnd) {
                lex_.fail("missing endmodule");
            } else {
                lex_.fail("unsupported construct '" + t.text + "'");
            }
        }
        finish_outputs();
        return std::move(out_);
    }

private:
    Token expect(Tok kind) {
        if (lex_.peek().kind != kind) lex_.fail("unexpected token '" + lex_.peek().text + "'");
        return lex_.next();
    }
    void expect_ident(const std::string& word) {
        const Token t = expect(Tok::kIdent);
        if (t.text != word) lex_.fail("expected '" + word + "', got '" + t.text + "'");
    }

    int parse_range_or_one() {
        // "[msb:lsb]" -> width; absent -> 1.  Only lsb == 0 is supported.
        if (lex_.peek().kind != Tok::kLBracket) return 1;
        lex_.next();
        const int msb = std::stoi(expect(Tok::kNumber).text);
        expect(Tok::kColon);
        const int lsb = std::stoi(expect(Tok::kNumber).text);
        expect(Tok::kRBracket);
        if (lsb != 0) lex_.fail("only [msb:0] ranges supported");
        return msb + 1;
    }

    void parse_port_list() {
        while (true) {
            const Token t = expect(Tok::kIdent);
            bool is_output;
            if (t.text == "input")
                is_output = false;
            else if (t.text == "output")
                is_output = true;
            else {
                lex_.fail("expected input/output, got '" + t.text + "'");
            }
            // optional wire/reg keyword
            if (lex_.peek().kind == Tok::kIdent &&
                (lex_.peek().text == "wire" || lex_.peek().text == "reg"))
                lex_.next();
            const int width = parse_range_or_one();
            const std::string name = expect(Tok::kIdent).text;

            SignalInfo info;
            info.width = width;
            info.is_output = is_output;
            info.bits.assign(std::size_t(width), kUnassigned);
            if (!is_output) {
                for (int b = 0; b < width; ++b) {
                    info.bits[std::size_t(b)] = out_.aig.create_pi();
                    out_.input_bits.push_back(bit_name(name, width, b));
                }
            } else {
                output_order_.push_back(name);
            }
            signals_.emplace(name, std::move(info));

            if (lex_.peek().kind == Tok::kComma) {
                lex_.next();
                continue;
            }
            expect(Tok::kRParen);
            break;
        }
    }

    static std::string bit_name(const std::string& name, int width, int bit) {
        return width == 1 ? name : name + "[" + std::to_string(bit) + "]";
    }

    void parse_wire_decl() {
        lex_.next();  // 'wire'
        const int width = parse_range_or_one();
        const std::string name = expect(Tok::kIdent).text;
        expect(Tok::kSemi);
        SignalInfo info;
        info.width = width;
        info.bits.assign(std::size_t(width), kUnassigned);
        if (!signals_.emplace(name, std::move(info)).second)
            lex_.fail("duplicate declaration of '" + name + "'");
    }

    void parse_assign() {
        lex_.next();  // 'assign'
        const std::string name = expect(Tok::kIdent).text;
        auto it = signals_.find(name);
        if (it == signals_.end()) lex_.fail("assign to undeclared '" + name + "'");
        int bit = 0;
        if (lex_.peek().kind == Tok::kLBracket) {
            lex_.next();
            bit = std::stoi(expect(Tok::kNumber).text);
            expect(Tok::kRBracket);
        } else if (it->second.width != 1) {
            lex_.fail("whole-vector assigns not supported");
        }
        expect(Tok::kAssignEq);
        const Lit rhs = parse_expr();
        expect(Tok::kSemi);
        if (bit < 0 || bit >= it->second.width) lex_.fail("bit index out of range");
        if (it->second.bits[std::size_t(bit)] != kUnassigned)
            lex_.fail("multiple drivers on '" + name + "'");
        it->second.bits[std::size_t(bit)] = rhs;
    }

    // expr := xor_expr ('|' xor_expr)*
    // xor_expr := and_expr ('^' and_expr)*
    // and_expr := unary ('&' unary)*
    // unary := '~' unary | atom
    // atom := '(' expr ')' | 1'b0 | 1'b1 | ident | ident '[' num ']'
    Lit parse_expr() {
        Lit v = parse_xor();
        while (lex_.peek().kind == Tok::kPipe) {
            lex_.next();
            v = out_.aig.create_or(v, parse_xor());
        }
        return v;
    }
    Lit parse_xor() {
        Lit v = parse_and();
        while (lex_.peek().kind == Tok::kCaret) {
            lex_.next();
            v = out_.aig.create_xor(v, parse_and());
        }
        return v;
    }
    Lit parse_and() {
        Lit v = parse_unary();
        while (lex_.peek().kind == Tok::kAmp) {
            lex_.next();
            v = out_.aig.create_and(v, parse_unary());
        }
        return v;
    }
    Lit parse_unary() {
        if (lex_.peek().kind == Tok::kTilde) {
            lex_.next();
            return logic::lit_not(parse_unary());
        }
        return parse_atom();
    }
    Lit parse_atom() {
        const Token t = lex_.next();
        if (t.kind == Tok::kLParen) {
            const Lit v = parse_expr();
            expect(Tok::kRParen);
            return v;
        }
        if (t.kind == Tok::kBitConst)
            return t.text == "1" ? logic::kConst1 : logic::kConst0;
        if (t.kind != Tok::kIdent) lex_.fail("expected operand, got '" + t.text + "'");
        auto it = signals_.find(t.text);
        if (it == signals_.end()) lex_.fail("use of undeclared '" + t.text + "'");
        int bit = 0;
        if (lex_.peek().kind == Tok::kLBracket) {
            lex_.next();
            bit = std::stoi(expect(Tok::kNumber).text);
            expect(Tok::kRBracket);
        } else if (it->second.width != 1) {
            lex_.fail("whole-vector use of '" + t.text + "' not supported");
        }
        if (bit < 0 || bit >= it->second.width) lex_.fail("bit index out of range");
        const Lit v = it->second.bits[std::size_t(bit)];
        if (v == kUnassigned)
            lex_.fail("use of '" + t.text + "' before assignment");
        return v;
    }

    void finish_outputs() {
        for (const auto& name : output_order_) {
            const SignalInfo& info = signals_.at(name);
            for (int b = 0; b < info.width; ++b) {
                const Lit v = info.bits[std::size_t(b)];
                if (v == kUnassigned)
                    throw std::runtime_error("verilog parse error: output bit " +
                                             bit_name(name, info.width, b) +
                                             " never assigned");
                out_.aig.add_po(v);
                out_.output_bits.push_back(bit_name(name, info.width, b));
            }
        }
    }

    Lexer lex_;
    ParsedModule out_;
    std::unordered_map<std::string, SignalInfo> signals_;
    std::vector<std::string> output_order_;
};

}  // namespace

ParsedModule parse_structural_verilog(const std::string& text, bool strash) {
    return Parser(text, strash).run();
}

}  // namespace matador::rtl
