// Automated design verification (the paper's auto-debug flow, Fig. 6 dark
// pink), reimplemented as a simulator-free equivalence ladder:
//
//   1. expression level : exported clause expressions vs the TrainedModel,
//   2. netlist level    : per-HCB AIGs vs partial-clause expression
//                         semantics, chained end to end,
//   3. RTL text level   : emitted hcb_*_comb Verilog parsed back and
//                         co-simulated against the generator's AIG
//                         (random 64-way sweeps + exhaustive when small).
//
// System-level (cycle-accurate, streaming) verification lives in the core
// flow where the architecture simulator is available.
#pragma once

#include <cstdint>
#include <string>

#include "model/trained_model.hpp"
#include "rtl/generators.hpp"

namespace matador::rtl {

/// Outcome of the verification ladder.
struct VerificationReport {
    bool expressions_match_model = false;
    bool hcb_aigs_match_expressions = false;
    bool rtl_matches_aigs = false;
    std::size_t hcbs_checked = 0;
    std::size_t vectors_checked = 0;
    std::string first_failure;  ///< empty when ok()

    bool ok() const {
        return expressions_match_model && hcb_aigs_match_expressions &&
               rtl_matches_aigs;
    }
};

/// Run the full ladder on a generated design.
/// `random_vectors` full input vectors drive levels 1-2; level 3 runs
/// `random_vectors` 64-way sweeps per HCB plus an exhaustive check when an
/// HCB has at most 16 inputs.
VerificationReport verify_design(const RtlDesign& design,
                                 const model::TrainedModel& m,
                                 std::size_t random_vectors, std::uint64_t seed);

/// Level-3 only, for one HCB: emit -> parse back -> equivalence check.
bool cosim_hcb_module(const HcbNetlist& hcb, std::size_t random_rounds,
                      std::uint64_t seed, std::string* error = nullptr);

}  // namespace matador::rtl
