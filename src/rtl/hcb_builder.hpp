// Hard Coded Clause Block (HCB) netlist construction (Section III, Fig. 5).
//
// The clause expressions are divided across the data packets: HCB k holds,
// for every clause, the partial AND over the includes whose feature index
// falls in packet k's bit range, ANDed with the chained partial result from
// HCB k-1 (HCB 0 seeds 1'b1).  Clauses with no includes in a packet's range
// collapse to wire-throughs; empty clauses are pruned entirely.
//
// Each HCB's combinational logic is built as one AIG over the packet bits
// and its chain inputs.  Building with strash enabled realizes the paper's
// intra-/inter-unit logic sharing; strash disabled emulates DON'T_TOUCH.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/aig.hpp"
#include "model/clause_schedule.hpp"
#include "model/packetization.hpp"
#include "model/trained_model.hpp"

namespace matador::rtl {

/// Re-exported for existing call sites; the schedule lives in the model
/// layer so the architecture simulator can share it.
using model::ClauseSchedule;
using model::schedule_clauses;

/// Static description of one HCB: which clauses it computes vs passes on.
struct HcbSpec {
    std::size_t packet = 0;   ///< packet / HCB index
    std::size_t lo = 0;       ///< first feature bit of the packet
    std::size_t hi = 0;       ///< one past the last valid feature bit
    /// Flat clause ids (class * clauses_per_class + index) with includes in
    /// [lo, hi) - these get logic in this HCB.
    std::vector<std::uint32_t> active_clauses;
    /// Live clauses that only pass through (registered, no logic).
    std::vector<std::uint32_t> passthrough_clauses;
    /// Active clauses that also have includes in an earlier packet (their
    /// AND takes a chain input); the rest start fresh from 1'b1.
    std::vector<bool> has_chain_input;  ///< parallel to active_clauses
};

/// One HCB's combinational cone.
/// AIG PI order: packet bits [0, hi-lo) first, then one chain input per
/// active clause with has_chain_input set (in active_clauses order).
/// AIG PO order: partial clause outputs in active_clauses order.
struct HcbNetlist {
    HcbSpec spec;
    logic::Aig aig;
};

/// Build all HCB netlists.  `strash` toggles structural hashing
/// (logic sharing) in the per-HCB AIGs.
std::vector<HcbNetlist> build_hcbs(const model::TrainedModel& m,
                                   const model::PacketPlan& plan, bool strash = true);

/// Reference evaluation of one HCB netlist for a full input vector:
/// returns the expected PO values given the packet bits and chain inputs.
/// Used by the verification flow to cross-check AIG vs expressions.
std::vector<bool> evaluate_hcb(const HcbNetlist& hcb, const util::BitVector& x,
                               const std::vector<bool>& chain_in);

}  // namespace matador::rtl
