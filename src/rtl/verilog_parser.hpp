// Structural Verilog parser (combinational subset) for the auto-debug flow.
//
// The verification stage of MATADOR proves that the *emitted RTL text*
// computes the same function as the model it was generated from.  This
// parser reads back the combinational HCB modules - module header, port and
// wire declarations, and continuous assigns over ~ & | ^, parentheses,
// bit-selects and 1-bit constants - and reconstructs an AIG whose PI order
// is the port-declaration bit order and whose POs are the output port bits.
// Co-simulation against the generator's AIG then closes the loop without an
// external simulator.
#pragma once

#include <string>

#include "logic/aig.hpp"

namespace matador::rtl {

/// Result of parsing one combinational module.
struct ParsedModule {
    std::string name;
    logic::Aig aig;
    /// Input bit names in PI order ("packet[3]", "chain_in[0]", ...).
    std::vector<std::string> input_bits;
    /// Output bit names in PO order.
    std::vector<std::string> output_bits;
};

/// Parse Verilog text.  Throws std::runtime_error with a line-numbered
/// message on anything outside the supported structural subset.
///
/// `strash` controls structural hashing in the reconstructed AIG.  The
/// default (true) shares identical AND cones, which is what verification
/// co-simulation wants.  Pass false to preserve the assign structure
/// one-to-one - required to round-trip DON'T_TOUCH designs byte-exactly
/// (the artifact store's disk tier relies on this).
ParsedModule parse_structural_verilog(const std::string& text, bool strash = true);

}  // namespace matador::rtl
