#include "rtl/verification.hpp"

#include <algorithm>
#include <bit>

#include "infer/engine.hpp"
#include "logic/aig_simulate.hpp"
#include "model/clause_expression.hpp"
#include "rtl/verilog_parser.hpp"
#include "rtl/verilog_writer.hpp"
#include "util/rng.hpp"

namespace matador::rtl {

namespace {

util::BitVector random_input(std::size_t bits, util::Xoshiro256ss& rng) {
    util::BitVector x(bits);
    for (std::size_t w = 0; w < x.word_count(); ++w) x.set_word(w, rng());
    return x;
}

/// Draw the next block of up to 64 random vectors (same rng draw order as
/// the historical one-vector-at-a-time ladder).
std::vector<util::BitVector> draw_block(std::size_t bits, std::size_t count,
                                        util::Xoshiro256ss& rng) {
    std::vector<util::BitVector> xs;
    xs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) xs.push_back(random_input(bits, rng));
    return xs;
}

/// The scalar reference side of a batched comparison: expected[lane j] for
/// one clause expression over a block of vectors, packed into a word.
template <class Eval>
std::uint64_t expected_word(std::size_t count, Eval&& eval) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < count; ++j)
        w |= std::uint64_t(eval(j)) << j;
    return w;
}

/// Track the batched ladder's first mismatch in scalar visit order
/// (vector-major, then check order within the vector), so failure reports
/// are identical to the historical per-vector ladder's.
struct FirstMismatch {
    std::size_t lane = 64;   ///< failing vector's lane within the block
    std::size_t check = 0;   ///< index of the failing per-vector check
    bool any() const { return lane < 64; }
    void offer(std::size_t check_index, std::uint64_t diff) {
        if (diff == 0) return;
        const auto l = std::size_t(std::countr_zero(diff));
        if (l < lane) {
            lane = l;
            check = check_index;
        }
    }
};

}  // namespace

bool cosim_hcb_module(const HcbNetlist& hcb, std::size_t random_rounds,
                      std::uint64_t seed, std::string* error) {
    const Module m = generate_hcb_comb_module(
        hcb, "hcb_" + std::to_string(hcb.spec.packet) + "_comb");
    const std::string text = emit_module(m);

    ParsedModule parsed;
    try {
        parsed = parse_structural_verilog(text);
    } catch (const std::exception& e) {
        if (error) *error = e.what();
        return false;
    }

    if (parsed.aig.num_pis() != hcb.aig.num_pis() ||
        parsed.aig.num_pos() != hcb.aig.num_pos()) {
        if (error)
            *error = "parsed module I/O shape mismatch for " + m.name;
        return false;
    }

    if (!logic::random_equivalent(parsed.aig, hcb.aig, random_rounds, seed)) {
        if (error) *error = "random co-simulation mismatch in " + m.name;
        return false;
    }
    if (hcb.aig.num_pis() <= 16 &&
        !logic::exhaustive_equivalent(parsed.aig, hcb.aig)) {
        if (error) *error = "exhaustive co-simulation mismatch in " + m.name;
        return false;
    }
    return true;
}

VerificationReport verify_design(const RtlDesign& design,
                                 const model::TrainedModel& m,
                                 std::size_t random_vectors, std::uint64_t seed) {
    VerificationReport rep;
    util::Xoshiro256ss rng(seed);
    const auto exprs = model::export_expressions(m);
    const std::size_t cpc = m.clauses_per_class();
    constexpr std::size_t kLanes = infer::BatchEngine::kLanes;

    const infer::BatchEngine engine(m);
    auto scratch = engine.make_scratch();
    std::vector<std::uint64_t> clause_out(m.total_clauses());

    // Level 1: expressions vs model, 64 vectors per pass.  The model side
    // is the batched clause kernel; the expression side stays the scalar,
    // independently-evaluated reference.
    rep.expressions_match_model = true;
    for (std::size_t v0 = 0; v0 < random_vectors && rep.expressions_match_model;
         v0 += kLanes) {
        const std::size_t count = std::min(kLanes, random_vectors - v0);
        const auto xs = draw_block(m.num_features(), count, rng);
        engine.clause_outputs_block(xs.data(), count, clause_out.data(), scratch);
        const std::uint64_t mask = infer::lane_mask(count);
        FirstMismatch miss;
        for (std::size_t i = 0; i < exprs.size(); ++i) {
            const auto& e = exprs[i];
            const std::uint64_t expected = expected_word(
                count, [&](std::size_t j) { return e.evaluate(xs[j]); });
            miss.offer(i, (expected ^ clause_out[e.cls * cpc + e.index]) & mask);
        }
        if (miss.any()) {
            rep.expressions_match_model = false;
            const auto& e = exprs[miss.check];
            rep.first_failure = "expression C[" + std::to_string(e.cls) + "][" +
                                std::to_string(e.index) + "] != model clause";
            rep.vectors_checked += miss.lane + 1;
        } else {
            rep.vectors_checked += count;
        }
    }

    // Level 2: HCB AIG chain vs expressions.  logic::simulate already packs
    // 64 patterns per word, so one simulation per HCB covers the whole
    // block: packet-bit PIs get the bit-transposed feature columns, chain
    // PIs the 64-lane partial-clause values carried between HCBs.
    rep.hcb_aigs_match_expressions = rep.expressions_match_model;
    const std::size_t live = design.schedule.live_clauses.size();
    std::vector<std::uint64_t> tx(m.num_features());
    std::vector<std::uint64_t> chain(m.total_clauses());
    for (std::size_t v0 = 0;
         v0 < random_vectors && rep.hcb_aigs_match_expressions; v0 += kLanes) {
        const std::size_t count = std::min(kLanes, random_vectors - v0);
        const auto xs = draw_block(m.num_features(), count, rng);
        infer::transpose_bits(xs.data(), count, m.num_features(), tx.data());
        std::fill(chain.begin(), chain.end(), ~std::uint64_t{0});
        for (const auto& hcb : design.hcbs) {
            std::vector<std::uint64_t> patterns;
            patterns.reserve(hcb.aig.num_pis());
            for (std::size_t f = hcb.spec.lo; f < hcb.spec.hi; ++f)
                patterns.push_back(tx[f]);
            for (std::size_t i = 0; i < hcb.spec.active_clauses.size(); ++i)
                if (hcb.spec.has_chain_input[i])
                    patterns.push_back(chain[hcb.spec.active_clauses[i]]);
            const auto out = logic::simulate(hcb.aig, patterns);
            for (std::size_t i = 0; i < out.size(); ++i)
                chain[hcb.spec.active_clauses[i]] = out[i];
        }
        const std::uint64_t mask = infer::lane_mask(count);
        FirstMismatch miss;
        for (std::size_t i = 0; i < live; ++i) {
            const auto flat = design.schedule.live_clauses[i];
            const auto& e = exprs[flat];
            // Expressions of live clauses are non-empty, so the chained AND
            // equals the full clause value.
            const std::uint64_t expected = expected_word(
                count, [&](std::size_t j) { return e.evaluate(xs[j]); });
            miss.offer(i, (expected ^ chain[flat]) & mask);
        }
        if (miss.any()) {
            rep.hcb_aigs_match_expressions = false;
            const auto flat = design.schedule.live_clauses[miss.check];
            rep.first_failure = "HCB chain mismatch on clause C[" +
                                std::to_string(flat / cpc) + "][" +
                                std::to_string(flat % cpc) + "]";
        }
    }

    // Level 3: emitted RTL parsed back vs the AIGs.
    rep.rtl_matches_aigs = rep.hcb_aigs_match_expressions;
    if (rep.rtl_matches_aigs) {
        for (const auto& hcb : design.hcbs) {
            std::string err;
            if (!cosim_hcb_module(hcb, random_vectors, rng(), &err)) {
                rep.rtl_matches_aigs = false;
                rep.first_failure = err;
                break;
            }
            ++rep.hcbs_checked;
        }
    }
    return rep;
}

}  // namespace matador::rtl
