#include "rtl/verification.hpp"

#include "logic/aig_simulate.hpp"
#include "model/clause_expression.hpp"
#include "rtl/verilog_parser.hpp"
#include "rtl/verilog_writer.hpp"
#include "util/rng.hpp"

namespace matador::rtl {

namespace {

util::BitVector random_input(std::size_t bits, util::Xoshiro256ss& rng) {
    util::BitVector x(bits);
    for (std::size_t w = 0; w < x.word_count(); ++w) x.set_word(w, rng());
    return x;
}

}  // namespace

bool cosim_hcb_module(const HcbNetlist& hcb, std::size_t random_rounds,
                      std::uint64_t seed, std::string* error) {
    const Module m = generate_hcb_comb_module(
        hcb, "hcb_" + std::to_string(hcb.spec.packet) + "_comb");
    const std::string text = emit_module(m);

    ParsedModule parsed;
    try {
        parsed = parse_structural_verilog(text);
    } catch (const std::exception& e) {
        if (error) *error = e.what();
        return false;
    }

    if (parsed.aig.num_pis() != hcb.aig.num_pis() ||
        parsed.aig.num_pos() != hcb.aig.num_pos()) {
        if (error)
            *error = "parsed module I/O shape mismatch for " + m.name;
        return false;
    }

    if (!logic::random_equivalent(parsed.aig, hcb.aig, random_rounds, seed)) {
        if (error) *error = "random co-simulation mismatch in " + m.name;
        return false;
    }
    if (hcb.aig.num_pis() <= 16 &&
        !logic::exhaustive_equivalent(parsed.aig, hcb.aig)) {
        if (error) *error = "exhaustive co-simulation mismatch in " + m.name;
        return false;
    }
    return true;
}

VerificationReport verify_design(const RtlDesign& design,
                                 const model::TrainedModel& m,
                                 std::size_t random_vectors, std::uint64_t seed) {
    VerificationReport rep;
    util::Xoshiro256ss rng(seed);
    const auto exprs = model::export_expressions(m);
    const std::size_t cpc = m.clauses_per_class();

    // Level 1: expressions vs model.
    rep.expressions_match_model = true;
    for (std::size_t v = 0; v < random_vectors && rep.expressions_match_model; ++v) {
        const auto x = random_input(m.num_features(), rng);
        for (const auto& e : exprs) {
            const bool expr_out = e.evaluate(x);
            const bool model_out = m.clause(e.cls, e.index).evaluate(x);
            if (expr_out != model_out) {
                rep.expressions_match_model = false;
                rep.first_failure = "expression C[" + std::to_string(e.cls) + "][" +
                                    std::to_string(e.index) + "] != model clause";
                break;
            }
        }
        ++rep.vectors_checked;
    }

    // Level 2: HCB AIG chain vs expressions.
    rep.hcb_aigs_match_expressions = rep.expressions_match_model;
    const std::size_t live = design.schedule.live_clauses.size();
    for (std::size_t v = 0; v < random_vectors && rep.hcb_aigs_match_expressions;
         ++v) {
        const auto x = random_input(m.num_features(), rng);
        // Chain the partial results through every HCB.
        std::vector<bool> chain(m.total_clauses(), true);
        for (const auto& hcb : design.hcbs) {
            std::vector<bool> chain_in;
            chain_in.reserve(hcb.spec.active_clauses.size());
            for (auto flat : hcb.spec.active_clauses) chain_in.push_back(chain[flat]);
            const auto out = evaluate_hcb(hcb, x, chain_in);
            for (std::size_t i = 0; i < out.size(); ++i)
                chain[hcb.spec.active_clauses[i]] = out[i];
        }
        for (std::size_t i = 0; i < live; ++i) {
            const auto flat = design.schedule.live_clauses[i];
            const auto& e = exprs[flat];
            const bool expected = e.evaluate(x);
            // Expressions of live clauses are non-empty, so the chained AND
            // equals the full clause value.
            if (chain[flat] != expected) {
                rep.hcb_aigs_match_expressions = false;
                rep.first_failure = "HCB chain mismatch on clause C[" +
                                    std::to_string(flat / cpc) + "][" +
                                    std::to_string(flat % cpc) + "]";
                break;
            }
        }
    }

    // Level 3: emitted RTL parsed back vs the AIGs.
    rep.rtl_matches_aigs = rep.hcb_aigs_match_expressions;
    if (rep.rtl_matches_aigs) {
        for (const auto& hcb : design.hcbs) {
            std::string err;
            if (!cosim_hcb_module(hcb, random_vectors, rng(), &err)) {
                rep.rtl_matches_aigs = false;
                rep.first_failure = err;
                break;
            }
            ++rep.hcbs_checked;
        }
    }
    return rep;
}

}  // namespace matador::rtl
