#include "rtl/verilog_writer.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace matador::rtl {

namespace {

int precedence(const Expr& e) {
    // Higher binds tighter.  Mirrors Verilog operator precedence closely
    // enough that we can parenthesize only when needed.
    if (std::holds_alternative<Expr::Unary>(e.node)) return 9;
    if (const auto* b = std::get_if<Expr::Binary>(&e.node)) {
        switch (b->op) {
            case BinaryOp::kAdd:
            case BinaryOp::kSub: return 7;
            case BinaryOp::kShl:
            case BinaryOp::kShr: return 6;
            case BinaryOp::kLt:
            case BinaryOp::kLe:
            case BinaryOp::kGt:
            case BinaryOp::kGe: return 5;
            case BinaryOp::kEq:
            case BinaryOp::kNe: return 4;
            case BinaryOp::kAnd: return 3;
            case BinaryOp::kXor: return 2;
            case BinaryOp::kOr: return 1;
        }
    }
    if (std::holds_alternative<Expr::Ternary>(e.node)) return 0;
    return 10;  // atoms
}

const char* binary_token(BinaryOp op) {
    switch (op) {
        case BinaryOp::kAnd: return "&";
        case BinaryOp::kOr: return "|";
        case BinaryOp::kXor: return "^";
        case BinaryOp::kAdd: return "+";
        case BinaryOp::kSub: return "-";
        case BinaryOp::kEq: return "==";
        case BinaryOp::kNe: return "!=";
        case BinaryOp::kLt: return "<";
        case BinaryOp::kLe: return "<=";
        case BinaryOp::kGt: return ">";
        case BinaryOp::kGe: return ">=";
        case BinaryOp::kShl: return "<<";
        case BinaryOp::kShr: return ">>";
    }
    return "?";
}

void emit(const Expr& e, std::ostream& os, int parent_prec);

void emit_child(const ExprP& c, std::ostream& os, int prec) {
    const bool paren = precedence(*c) < prec;
    if (paren) os << "(";
    emit(*c, os, paren ? 0 : prec);
    if (paren) os << ")";
}

void emit(const Expr& e, std::ostream& os, int parent_prec) {
    if (const auto* r = std::get_if<Expr::Ref>(&e.node)) {
        os << r->name;
    } else if (const auto* i = std::get_if<Expr::Index>(&e.node)) {
        os << i->name << "[" << i->index << "]";
    } else if (const auto* s = std::get_if<Expr::Slice>(&e.node)) {
        os << s->name << "[" << s->msb << ":" << s->lsb << "]";
    } else if (const auto* c = std::get_if<Expr::Const>(&e.node)) {
        if (c->width == 0)
            os << c->value;
        else if (c->width == 1)
            os << "1'b" << (c->value & 1u);
        else
            os << c->width << "'d" << c->value;
    } else if (const auto* u = std::get_if<Expr::Unary>(&e.node)) {
        switch (u->op) {
            case UnaryOp::kNot: os << "~"; break;
            case UnaryOp::kReduceAnd: os << "&"; break;
            case UnaryOp::kReduceOr: os << "|"; break;
            case UnaryOp::kMinus: os << "-"; break;
        }
        emit_child(u->a, os, 9);
    } else if (const auto* b = std::get_if<Expr::Binary>(&e.node)) {
        const int p = precedence(e);
        emit_child(b->a, os, p);
        os << " " << binary_token(b->op) << " ";
        // Right operand gets p+1 so same-precedence chains parenthesize on
        // the right (keeps subtraction and comparisons unambiguous).
        emit_child(b->b, os, p + 1);
    } else if (const auto* t = std::get_if<Expr::Ternary>(&e.node)) {
        if (parent_prec > 0) os << "(";
        emit_child(t->cond, os, 1);
        os << " ? ";
        emit_child(t->then_e, os, 1);
        os << " : ";
        emit_child(t->else_e, os, 0);
        if (parent_prec > 0) os << ")";
    } else if (const auto* cc = std::get_if<Expr::Concat>(&e.node)) {
        os << "{";
        for (std::size_t i = 0; i < cc->parts.size(); ++i) {
            if (i) os << ", ";
            emit(*cc->parts[i], os, 0);
        }
        os << "}";
    } else if (const auto* sg = std::get_if<Expr::Signed>(&e.node)) {
        os << "$signed(";
        emit(*sg->a, os, 0);
        os << ")";
    }
}

void emit_stmt(const Stmt& s, std::ostream& os, int indent);

void emit_body(const std::vector<Stmt>& body, std::ostream& os, int indent) {
    const std::string pad(std::size_t(indent) * 2, ' ');
    if (body.size() == 1) {
        emit_stmt(body.front(), os, indent);
    } else {
        os << pad << "begin\n";
        for (const auto& st : body) emit_stmt(st, os, indent + 1);
        os << pad << "end\n";
    }
}

void emit_stmt(const Stmt& s, std::ostream& os, int indent) {
    const std::string pad(std::size_t(indent) * 2, ' ');
    if (const auto* a = std::get_if<NonBlocking>(&s.node)) {
        os << pad;
        emit(*a->lhs, os, 0);
        os << " <= ";
        emit(*a->rhs, os, 0);
        os << ";\n";
    } else if (const auto* b = std::get_if<Blocking>(&s.node)) {
        os << pad;
        emit(*b->lhs, os, 0);
        os << " = ";
        emit(*b->rhs, os, 0);
        os << ";\n";
    } else if (const auto* f = std::get_if<IfStmt>(&s.node)) {
        os << pad << "if (";
        emit(*f->cond, os, 0);
        os << ")\n";
        emit_body(f->then_body, os, indent + 1);
        if (!f->else_body.empty()) {
            os << pad << "else\n";
            emit_body(f->else_body, os, indent + 1);
        }
    } else if (const auto* c = std::get_if<CaseStmt>(&s.node)) {
        os << pad << "case (";
        emit(*c->subject, os, 0);
        os << ")\n";
        for (const auto& item : c->items) {
            os << pad << "  ";
            if (item.label)
                emit(*item.label, os, 0);
            else
                os << "default";
            os << ":\n";
            emit_body(item.body, os, indent + 2);
        }
        os << pad << "endcase\n";
    }
}

std::string range_decl(int width) {
    return width <= 1 ? "" : "[" + std::to_string(width - 1) + ":0] ";
}

}  // namespace

std::string emit_expr(const Expr& e) {
    std::ostringstream os;
    emit(e, os, 0);
    return os.str();
}

std::string emit_module(const Module& m) {
    std::ostringstream os;
    for (const auto& c : m.header_comments) os << "// " << c << "\n";
    if (m.dont_touch) os << "(* DONT_TOUCH = \"yes\" *)\n";
    os << "module " << m.name << " (\n";
    for (std::size_t i = 0; i < m.ports.size(); ++i) {
        const auto& p = m.ports[i];
        os << "  " << (p.dir == PortDir::kInput ? "input " : "output ")
           << (p.is_reg ? "reg " : "wire ") << range_decl(p.width) << p.name
           << (i + 1 < m.ports.size() ? "," : "") << "\n";
    }
    os << ");\n\n";

    for (const auto& n : m.nets) {
        os << "  " << (n.is_reg ? "reg " : "wire ") << (n.is_signed ? "signed " : "")
           << range_decl(n.width) << n.name << ";";
        if (!n.comment.empty()) os << "  // " << n.comment;
        os << "\n";
    }
    if (!m.nets.empty()) os << "\n";

    for (const auto& a : m.assigns) {
        os << "  assign ";
        emit(*a.lhs, os, 0);
        os << " = ";
        emit(*a.rhs, os, 0);
        os << ";\n";
    }
    if (!m.assigns.empty()) os << "\n";

    for (const auto& blk : m.always_blocks) {
        os << "  always @(posedge " << blk.clock << ") begin\n";
        for (const auto& st : blk.body) emit_stmt(st, os, 2);
        os << "  end\n\n";
    }

    for (const auto& inst : m.instances) {
        os << "  " << inst.module_name << " " << inst.instance_name << " (\n";
        for (std::size_t i = 0; i < inst.connections.size(); ++i) {
            os << "    ." << inst.connections[i].first << "(";
            emit(*inst.connections[i].second, os, 0);
            os << ")" << (i + 1 < inst.connections.size() ? "," : "") << "\n";
        }
        os << "  );\n\n";
    }

    os << "endmodule\n";
    return os.str();
}

void write_module_file(const Module& m, const std::string& path) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("write_module_file: cannot open " + path);
    f << emit_module(m);
}

}  // namespace matador::rtl
