// Verilog text emission from the AST of verilog_ast.hpp.
#pragma once

#include <string>

#include "rtl/verilog_ast.hpp"

namespace matador::rtl {

/// Serialize one expression (used by tests and the testbench generator).
std::string emit_expr(const Expr& e);

/// Serialize a whole module to Verilog-2001 text.
std::string emit_module(const Module& m);

/// Write a module to a file (throws std::runtime_error on I/O failure).
void write_module_file(const Module& m, const std::string& path);

}  // namespace matador::rtl
