// Minimal Verilog-2001 AST for the generated accelerator RTL.
//
// The generators build Modules from netlists and architecture parameters;
// the writer (verilog_writer.hpp) serializes them to synthesisable text.
// Combinational HCB logic uses only wires + continuous assigns over
// ~ / & / | / ^, bit-selects and 1-bit constants, so the structural parser
// (verilog_parser.hpp) can read it back for co-simulation.  Sequential
// blocks (always @(posedge clk)) carry nonblocking assigns, if/else and
// case - enough for the chain registers, class-sum pipeline and the
// controller FSM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace matador::rtl {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

enum class UnaryOp { kNot, kReduceAnd, kReduceOr, kMinus };
enum class BinaryOp {
    kAnd, kOr, kXor,
    kAdd, kSub,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kShl, kShr,
};

struct Expr {
    struct Ref {          // plain identifier
        std::string name;
    };
    struct Index {        // name[i]
        std::string name;
        int index;
    };
    struct Slice {        // name[msb:lsb]
        std::string name;
        int msb, lsb;
    };
    struct Const {        // width'dvalue (width 0 => unsized decimal)
        int width;
        std::uint64_t value;
        bool is_signed = false;
    };
    struct Unary {
        UnaryOp op;
        ExprP a;
    };
    struct Binary {
        BinaryOp op;
        ExprP a, b;
    };
    struct Ternary {
        ExprP cond, then_e, else_e;
    };
    struct Concat {
        std::vector<ExprP> parts;
    };
    struct Signed {       // $signed(a)
        ExprP a;
    };

    std::variant<Ref, Index, Slice, Const, Unary, Binary, Ternary, Concat, Signed> node;
};

// Expression factory helpers.
ExprP ref(std::string name);
ExprP idx(std::string name, int index);
ExprP slice(std::string name, int msb, int lsb);
ExprP bconst(int width, std::uint64_t value);
ExprP uconst(std::uint64_t value);  // unsized decimal
ExprP vnot(ExprP a);
ExprP vand(ExprP a, ExprP b);
ExprP vor(ExprP a, ExprP b);
ExprP vxor(ExprP a, ExprP b);
ExprP vadd(ExprP a, ExprP b);
ExprP vsub(ExprP a, ExprP b);
ExprP veq(ExprP a, ExprP b);
ExprP vge(ExprP a, ExprP b);
ExprP vgt(ExprP a, ExprP b);
ExprP vternary(ExprP c, ExprP t, ExprP e);
ExprP vconcat(std::vector<ExprP> parts);
ExprP vsigned(ExprP a);
ExprP vbin(BinaryOp op, ExprP a, ExprP b);
ExprP vun(UnaryOp op, ExprP a);

// ---------------------------------------------------------------------------
// Statements (inside always blocks)
// ---------------------------------------------------------------------------

struct Stmt;

struct NonBlocking {  // lhs <= rhs;
    ExprP lhs, rhs;
};
struct Blocking {  // lhs = rhs;
    ExprP lhs, rhs;
};
struct IfStmt {
    ExprP cond;
    std::vector<Stmt> then_body;
    std::vector<Stmt> else_body;
};
struct CaseItem {
    ExprP label;  // nullptr => default
    std::vector<Stmt> body;
};
struct CaseStmt {
    ExprP subject;
    std::vector<CaseItem> items;
};

struct Stmt {
    std::variant<NonBlocking, Blocking, IfStmt, CaseStmt> node;
};

Stmt nb(ExprP lhs, ExprP rhs);
Stmt blocking(ExprP lhs, ExprP rhs);

// ---------------------------------------------------------------------------
// Module structure
// ---------------------------------------------------------------------------

enum class PortDir { kInput, kOutput };

struct Port {
    std::string name;
    int width = 1;  // 1 => scalar, else [width-1:0]
    PortDir dir = PortDir::kInput;
    bool is_reg = false;  // output reg
};

struct Net {
    std::string name;
    int width = 1;
    bool is_reg = false;
    bool is_signed = false;
    std::string comment;  // trailing // comment on the declaration
};

struct ContinuousAssign {
    ExprP lhs, rhs;
};

struct AlwaysFF {
    std::string clock = "clk";
    std::vector<Stmt> body;
};

struct Instance {
    std::string module_name;
    std::string instance_name;
    std::vector<std::pair<std::string, ExprP>> connections;  // (.port(expr))
};

struct Module {
    std::string name;
    std::vector<Port> ports;
    std::vector<Net> nets;
    std::vector<ContinuousAssign> assigns;
    std::vector<AlwaysFF> always_blocks;
    std::vector<Instance> instances;
    std::vector<std::string> header_comments;
    bool dont_touch = false;  ///< emit (* DONT_TOUCH = "yes" *) on the module
};

}  // namespace matador::rtl
