// Pynq deployment driver generation.
//
// MATADOR ships a sample Jupyter notebook that validates the deployed
// accelerator's test accuracy and measures throughput/latency over the
// AXI DMA (following the FINN measurement procedure).  This generator
// emits the equivalent standalone Python script for a generated design:
// it packetizes booleanized inputs exactly like model/packetization.hpp,
// pushes them through the Pynq `allocate`/DMA API, and cross-checks the
// returned classes against golden predictions baked in at generation time.
// Without a board the script still runs in `--dry-run` mode against a
// pure-Python golden model, so the artefact is testable here.
#pragma once

#include <string>
#include <vector>

#include "model/trained_model.hpp"
#include "rtl/generators.hpp"
#include "util/bitvector.hpp"

namespace matador::rtl {

/// Generate the Python driver/validation script for `design`.
/// `sample_inputs` are embedded (packetized) with their golden predictions.
std::string generate_pynq_driver(const RtlDesign& design,
                                 const model::TrainedModel& m,
                                 const std::vector<util::BitVector>& sample_inputs,
                                 const std::string& bitstream_name = "matador.bit");

}  // namespace matador::rtl
