// RTL generators: TrainedModel + ArchParams -> complete accelerator design.
//
// Produces the block diagram of Fig. 5 as synthesisable Verilog-2001:
//   * hcb_<k>_comb : pure combinational partial-clause logic (from the AIG;
//                    round-trippable through the structural parser),
//   * hcb_<k>      : sequential wrapper with the Clause Out register,
//   * class_sum    : per-class polarity-split adder trees, pipelined,
//   * argmax_tree  : binary comparison tree, pipelined, ties to lower index,
//   * matador_ctrl : AXI-stream control FSM (reset / stall / compute / idle),
//   * matador_top  : the full core wiring packet routing to HCBs.
#pragma once

#include <string>
#include <vector>

#include "model/architecture.hpp"
#include "model/trained_model.hpp"
#include "rtl/hcb_builder.hpp"
#include "rtl/verilog_ast.hpp"

namespace matador::rtl {

/// The complete generated design plus the metadata verification needs.
struct RtlDesign {
    model::ArchParams arch;
    ClauseSchedule schedule;
    std::vector<HcbNetlist> hcbs;   ///< the AIGs behind the comb modules

    std::vector<Module> hcb_comb;   ///< hcb_<k>_comb
    std::vector<Module> hcb_seq;    ///< hcb_<k>
    Module class_sum;
    Module argmax;
    Module controller;
    Module top;
};

/// Generate the full design.  `strash` toggles logic sharing in the HCB
/// AIGs (false emulates the DON'T_TOUCH flow of Fig. 8).
RtlDesign generate_rtl(const model::TrainedModel& m, const model::ArchParams& arch,
                       bool strash = true);

/// Assemble the full design from *prebuilt* HCB netlists (e.g. rehydrated
/// from the artifact store's disk tier), skipping the expensive
/// build_hcbs step.  Module emission is deterministic: given the same
/// netlists and architecture this produces byte-identical RTL to
/// generate_rtl.
RtlDesign assemble_rtl(const model::TrainedModel& m, const model::ArchParams& arch,
                       std::vector<HcbNetlist> hcbs, bool strash = true);

/// Build just one HCB's combinational module from its netlist
/// (exposed for the verification flow and tests).
Module generate_hcb_comb_module(const HcbNetlist& hcb, const std::string& name,
                                bool dont_touch = false);

/// Write every module of the design into `dir` (one .v file per module).
/// Returns the written file paths.
std::vector<std::string> write_design(const RtlDesign& design, const std::string& dir);

}  // namespace matador::rtl
