#include "rtl/testbench_gen.hpp"

#include <sstream>

#include "model/packetization.hpp"

namespace matador::rtl {

std::string generate_testbench(const RtlDesign& design,
                               const model::TrainedModel& m,
                               const std::vector<util::BitVector>& inputs) {
    const auto& arch = design.arch;
    const model::Packetizer packetizer(arch.plan);
    const std::size_t packets = arch.plan.num_packets();
    const int iw = int(arch.argmax_levels == 0 ? 1 : arch.argmax_levels);
    const int bus = int(arch.options.bus_width);

    std::ostringstream os;
    os << "// Auto-generated MATADOR testbench (auto-debug flow)\n";
    os << "// " << inputs.size() << " datapoints, " << packets
       << " packets each, " << bus << "-bit stream\n";
    os << "`timescale 1ns/1ps\n";
    os << "module matador_tb;\n";
    os << "  reg clk = 1'b0;\n";
    os << "  reg rst = 1'b1;\n";
    os << "  reg [" << bus - 1 << ":0] s_axis_tdata = " << bus << "'d0;\n";
    os << "  reg s_axis_tvalid = 1'b0;\n";
    os << "  reg s_axis_tlast = 1'b0;\n";
    os << "  wire s_axis_tready;\n";
    os << "  wire [" << iw - 1 << ":0] result;\n";
    os << "  wire result_valid;\n\n";

    const std::size_t total_beats = inputs.size() * packets;
    os << "  reg [" << bus - 1 << ":0] stimulus [0:" << (total_beats ? total_beats - 1 : 0)
       << "];\n";
    os << "  reg [" << iw - 1 << ":0] expected [0:"
       << (inputs.empty() ? 0 : inputs.size() - 1) << "];\n\n";

    os << "  initial begin\n";
    std::size_t beat = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const auto words = packetizer.packetize(inputs[i]);
        for (const auto w : words)
            os << "    stimulus[" << beat++ << "] = " << bus << "'h" << std::hex << w
               << std::dec << ";\n";
        os << "    expected[" << i << "] = " << m.predict(inputs[i]) << ";\n";
    }
    os << "  end\n\n";

    os << "  matador_top dut (\n"
          "    .clk(clk), .rst(rst),\n"
          "    .s_axis_tdata(s_axis_tdata), .s_axis_tvalid(s_axis_tvalid),\n"
          "    .s_axis_tready(s_axis_tready), .s_axis_tlast(s_axis_tlast),\n"
          "    .result(result), .result_valid(result_valid)\n"
          "  );\n\n";

    os << "  always #5 clk = ~clk;  // 100 MHz testbench clock\n\n";

    os << "  integer beat_i = 0;\n";
    os << "  integer result_i = 0;\n";
    os << "  integer errors = 0;\n";
    os << "  integer first_latency = -1;\n";
    os << "  integer cycle = 0;\n";
    os << "  integer prev_result_cycle = -1;\n";
    os << "  integer ii = -1;\n\n";

    os << "  always @(posedge clk) begin\n";
    os << "    cycle = cycle + 1;\n";
    os << "    if (!rst && s_axis_tready && beat_i < " << total_beats << ") begin\n";
    os << "      s_axis_tdata  <= stimulus[beat_i];\n";
    os << "      s_axis_tvalid <= 1'b1;\n";
    os << "      s_axis_tlast  <= (beat_i % " << packets << ") == " << packets - 1
       << ";\n";
    os << "      beat_i = beat_i + 1;\n";
    os << "    end else if (beat_i >= " << total_beats << ") begin\n";
    os << "      s_axis_tvalid <= 1'b0;\n";
    os << "    end\n";
    os << "    if (result_valid) begin\n";
    os << "      if (first_latency < 0) first_latency = cycle;\n";
    os << "      if (prev_result_cycle >= 0 && ii < 0) ii = cycle - prev_result_cycle;\n";
    os << "      prev_result_cycle = cycle;\n";
    os << "      if (result !== expected[result_i]) begin\n";
    os << "        $display(\"MATADOR-TB MISMATCH datapoint %0d: got %0d expected %0d\",\n";
    os << "                 result_i, result, expected[result_i]);\n";
    os << "        errors = errors + 1;\n";
    os << "      end\n";
    os << "      result_i = result_i + 1;\n";
    os << "      if (result_i == " << inputs.size() << ") begin\n";
    os << "        if (errors == 0) $display(\"MATADOR-TB PASS\");\n";
    os << "        else $display(\"MATADOR-TB FAIL (%0d errors)\", errors);\n";
    os << "        $display(\"MATADOR-TB first-result latency %0d cycles\", first_latency);\n";
    os << "        $display(\"MATADOR-TB initiation interval %0d cycles\", ii);\n";
    os << "        $finish;\n";
    os << "      end\n";
    os << "    end\n";
    os << "  end\n\n";

    os << "  initial begin\n";
    os << "    repeat (4) @(posedge clk);\n";
    os << "    rst = 1'b0;\n";
    os << "    repeat (" << total_beats + 64 * (packets + 4) + 64
       << ") @(posedge clk);\n";
    os << "    $display(\"MATADOR-TB TIMEOUT\");\n";
    os << "    $finish;\n";
    os << "  end\n";
    os << "endmodule\n";
    return os.str();
}

std::string generate_ila_stub(const RtlDesign& design) {
    const auto& arch = design.arch;
    const int iw = int(arch.argmax_levels == 0 ? 1 : arch.argmax_levels);
    std::ostringstream os;
    os << "// Auto-generated ILA tap (debug core insertion point).\n";
    os << "// MATADOR polls AXI-stream transactions through this probe set;\n";
    os << "// because the accelerator itself needs no BRAM, the debug core\n";
    os << "// does not eat into the accelerator's resource pool.\n";
    os << "// probe0: s_axis_tvalid & s_axis_tready (beat accepted)\n";
    os << "// probe1: s_axis_tdata[" << int(arch.options.bus_width) - 1 << ":0]\n";
    os << "// probe2: result_valid\n";
    os << "// probe3: result[" << iw - 1 << ":0]\n";
    os << "ila_0 u_ila (\n";
    os << "  .clk(clk),\n";
    os << "  .probe0(s_axis_tvalid & s_axis_tready),\n";
    os << "  .probe1(s_axis_tdata),\n";
    os << "  .probe2(result_valid),\n";
    os << "  .probe3(result)\n";
    os << ");\n";
    return os.str();
}

}  // namespace matador::rtl
