#include "rtl/verilog_ast.hpp"

namespace matador::rtl {

namespace {
template <typename T>
ExprP make(T&& node) {
    auto e = std::make_shared<Expr>();
    e->node = std::forward<T>(node);
    return e;
}
}  // namespace

ExprP ref(std::string name) { return make(Expr::Ref{std::move(name)}); }
ExprP idx(std::string name, int index) { return make(Expr::Index{std::move(name), index}); }
ExprP slice(std::string name, int msb, int lsb) {
    return make(Expr::Slice{std::move(name), msb, lsb});
}
ExprP bconst(int width, std::uint64_t value) { return make(Expr::Const{width, value}); }
ExprP uconst(std::uint64_t value) { return make(Expr::Const{0, value}); }
ExprP vnot(ExprP a) { return make(Expr::Unary{UnaryOp::kNot, std::move(a)}); }
ExprP vand(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kAnd, std::move(a), std::move(b)});
}
ExprP vor(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kOr, std::move(a), std::move(b)});
}
ExprP vxor(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kXor, std::move(a), std::move(b)});
}
ExprP vadd(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kAdd, std::move(a), std::move(b)});
}
ExprP vsub(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kSub, std::move(a), std::move(b)});
}
ExprP veq(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kEq, std::move(a), std::move(b)});
}
ExprP vge(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kGe, std::move(a), std::move(b)});
}
ExprP vgt(ExprP a, ExprP b) {
    return make(Expr::Binary{BinaryOp::kGt, std::move(a), std::move(b)});
}
ExprP vternary(ExprP c, ExprP t, ExprP e) {
    return make(Expr::Ternary{std::move(c), std::move(t), std::move(e)});
}
ExprP vconcat(std::vector<ExprP> parts) { return make(Expr::Concat{std::move(parts)}); }
ExprP vsigned(ExprP a) { return make(Expr::Signed{std::move(a)}); }
ExprP vbin(BinaryOp op, ExprP a, ExprP b) {
    return make(Expr::Binary{op, std::move(a), std::move(b)});
}
ExprP vun(UnaryOp op, ExprP a) { return make(Expr::Unary{op, std::move(a)}); }

Stmt nb(ExprP lhs, ExprP rhs) {
    return Stmt{NonBlocking{std::move(lhs), std::move(rhs)}};
}
Stmt blocking(ExprP lhs, ExprP rhs) {
    return Stmt{Blocking{std::move(lhs), std::move(rhs)}};
}

}  // namespace matador::rtl
