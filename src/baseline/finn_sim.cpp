#include "baseline/finn_sim.hpp"

#include <stdexcept>

namespace matador::baseline {

FinnSimResult simulate_finn_pipeline(const std::vector<FinnFolding>& folding,
                                     std::size_t images, std::size_t fifo_depth,
                                     std::size_t max_cycles) {
    if (folding.empty())
        throw std::invalid_argument("simulate_finn_pipeline: no layers");
    if (fifo_depth == 0)
        throw std::invalid_argument("simulate_finn_pipeline: fifo_depth == 0");

    const std::size_t layers = folding.size();

    // Per-layer state.  An MVTU occupies `fold` cycles per image but emits
    // its first output group after one pass over the input vector
    // (`head` = in/simd cycles), so the downstream layer overlaps with the
    // tail of this one - the streaming behaviour of FINN's dataflow.
    std::vector<std::size_t> head(layers);
    for (std::size_t l = 0; l < layers; ++l) {
        const std::size_t in_pass =
            folding[l].simd == 0 || folding[l].in == 0
                ? folding[l].fold
                : std::max<std::size_t>(1, folding[l].in / folding[l].simd);
        head[l] = std::min<std::size_t>(folding[l].fold, in_pass);
    }

    std::vector<std::size_t> fifo(layers, 0);   // queued whole images
    std::vector<bool> busy(layers, false);
    std::vector<std::size_t> elapsed(layers, 0);
    std::vector<bool> forwarded(layers, false);

    FinnSimResult res;
    res.retire_cycles.reserve(images);
    std::vector<std::size_t> inject_cycle;
    inject_cycle.reserve(images);

    std::size_t injected = 0;
    std::size_t cycle = 0;
    for (; cycle < max_cycles && res.images_completed < images; ++cycle) {
        if (injected < images && fifo[0] < fifo_depth) {
            fifo[0]++;
            inject_cycle.push_back(cycle);
            ++injected;
        }

        // Downstream first so space freed this cycle is visible upstream
        // next cycle (registered handshake).
        for (std::size_t l = layers; l-- > 0;) {
            if (busy[l]) {
                ++elapsed[l];
                // Emit the image's results downstream at the head boundary.
                if (!forwarded[l] && elapsed[l] >= head[l]) {
                    if (l + 1 == layers) {
                        forwarded[l] = true;  // retire happens at full fold
                    } else if (fifo[l + 1] < fifo_depth) {
                        fifo[l + 1]++;
                        forwarded[l] = true;
                    }
                    // else: blocked; retry next cycle (elapsed keeps
                    // advancing only up to the fold boundary below).
                }
                if (elapsed[l] >= folding[l].fold && forwarded[l]) {
                    if (l + 1 == layers) {
                        res.retire_cycles.push_back(cycle);
                        ++res.images_completed;
                    }
                    busy[l] = false;
                } else if (elapsed[l] > folding[l].fold) {
                    elapsed[l] = folding[l].fold;  // stalled at completion
                }
            }
            if (!busy[l] && fifo[l] > 0) {
                fifo[l]--;
                busy[l] = true;
                elapsed[l] = 0;
                forwarded[l] = false;
            }
        }
    }

    res.cycles_run = cycle;
    if (!res.retire_cycles.empty() && !inject_cycle.empty())
        res.first_latency_cycles = res.retire_cycles.front() - inject_cycle.front() + 1;
    if (res.retire_cycles.size() >= 2) {
        double total = 0.0;
        for (std::size_t i = 1; i < res.retire_cycles.size(); ++i)
            total += double(res.retire_cycles[i] - res.retire_cycles[i - 1]);
        res.mean_initiation_interval =
            total / double(res.retire_cycles.size() - 1);
    }
    return res;
}

}  // namespace matador::baseline
