// Quantized / binarized MLP baseline (the FINN-side models of Table II).
//
// Straight-through-estimator (STE) training with float shadow weights and
// quantized forward passes:
//   * weights  : 1 bit (binary, sign * per-layer scale) or 2 bit
//                (ternary {-1, 0, +1} * scale),
//   * hidden activations : 1 bit (sign) or 2 bit (4-level uniform in [-1,1]),
//   * inputs   : boolean 0/1 bits (same booleanized data the TM sees),
//   * output   : integer-friendly linear logits (unquantized accumulate,
//                exactly as FINN's final popcount-threshold stage).
// This provides the "Test Acc" column for the FINN rows of Table I on the
// same synthetic datasets; the hardware-side FINN numbers come from the
// dataflow estimator in finn_model.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace matador::baseline {

/// Network + training hyperparameters.
struct MlpConfig {
    std::vector<std::size_t> layer_sizes;  ///< e.g. {784, 256, 256, 256, 10}
    unsigned weight_bits = 1;              ///< 1, 2, or 32 (float reference)
    unsigned activation_bits = 1;          ///< 1, 2, or 32 (ReLU reference)
    double learning_rate = 0.01;
    double weight_decay = 0.0;
    std::uint64_t seed = 7;
};

/// STE-trained quantized multilayer perceptron.
class QuantizedMlp {
public:
    explicit QuantizedMlp(MlpConfig cfg);

    const MlpConfig& config() const { return cfg_; }
    std::size_t num_inputs() const { return cfg_.layer_sizes.front(); }
    std::size_t num_outputs() const { return cfg_.layer_sizes.back(); }

    /// One SGD pass over the dataset (order as stored).
    void train_epoch(const data::Dataset& ds);
    /// Shuffled multi-epoch training.
    void fit(const data::Dataset& ds, std::size_t epochs);

    /// Quantized-forward logits for one example.
    std::vector<double> logits(const util::BitVector& x) const;
    std::uint32_t predict(const util::BitVector& x) const;
    double evaluate(const data::Dataset& ds) const;

    /// Total quantized weight bits (drives the FINN BRAM estimate).
    std::size_t weight_storage_bits() const;

private:
    struct Layer {
        util::Matrix<float> w;        // shadow float weights [out x in]
        std::vector<float> bias;      // float biases (threshold stage)
        mutable util::Matrix<float> wq;  // quantized view, refreshed per use
        mutable float scale = 1.0f;
    };

    void quantize_layer(const Layer& l) const;
    void forward(const util::BitVector& x, std::vector<std::vector<float>>& pre,
                 std::vector<std::vector<float>>& act) const;
    float quantize_activation(float a) const;

    MlpConfig cfg_;
    std::vector<Layer> layers_;
    mutable util::Xoshiro256ss rng_;
};

}  // namespace matador::baseline
