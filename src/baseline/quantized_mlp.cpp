#include "baseline/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace matador::baseline {

QuantizedMlp::QuantizedMlp(MlpConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
    if (cfg_.layer_sizes.size() < 2)
        throw std::invalid_argument("QuantizedMlp: need at least input+output layer");
    if (cfg_.weight_bits != 1 && cfg_.weight_bits != 2 && cfg_.weight_bits != 32)
        throw std::invalid_argument("QuantizedMlp: weight_bits must be 1 or 2");
    if (cfg_.activation_bits != 1 && cfg_.activation_bits != 2 && cfg_.activation_bits != 32)
        throw std::invalid_argument("QuantizedMlp: activation_bits must be 1 or 2");

    for (std::size_t l = 0; l + 1 < cfg_.layer_sizes.size(); ++l) {
        Layer layer;
        const std::size_t in = cfg_.layer_sizes[l], out = cfg_.layer_sizes[l + 1];
        layer.w = util::Matrix<float>(out, in);
        layer.wq = util::Matrix<float>(out, in);
        layer.bias.assign(out, 0.0f);
        // Glorot-uniform initialisation of the shadow weights.
        const float bound = std::sqrt(6.0f / float(in + out));
        for (auto& v : layer.w.data())
            v = float((rng_.uniform() * 2.0 - 1.0) * bound);
        layers_.push_back(std::move(layer));
    }
}

void QuantizedMlp::quantize_layer(const Layer& l) const {
    if (cfg_.weight_bits == 32) {  // float reference mode
        l.wq = l.w;
        l.scale = 1.0f;
        return;
    }
    // Per-output-row scale = mean |w| over the row (XNOR-Net style).
    const std::size_t out = l.bias.size(), in = l.w.cols();
    double layer_mean = 0.0;
    for (std::size_t o = 0; o < out; ++o) {
        const float* wrow = l.w.row(o);
        float* qrow = l.wq.row(o);
        double mean_abs = 0.0;
        for (std::size_t i = 0; i < in; ++i) mean_abs += std::fabs(double(wrow[i]));
        const float a = float(std::max(mean_abs / double(in), 1e-8));
        layer_mean += a;
        if (cfg_.weight_bits == 1) {
            for (std::size_t i = 0; i < in; ++i) qrow[i] = wrow[i] >= 0 ? a : -a;
        } else {
            // Ternary with threshold 0.5 * scale.
            const float thr = 0.5f * a;
            for (std::size_t i = 0; i < in; ++i)
                qrow[i] = wrow[i] > thr ? a : (wrow[i] < -thr ? -a : 0.0f);
        }
    }
    l.scale = float(layer_mean / double(out));
}

float QuantizedMlp::quantize_activation(float a) const {
    if (cfg_.activation_bits == 32) return std::max(a, 0.0f);  // float ReLU mode
    const float clipped = std::clamp(a, -1.0f, 1.0f);
    if (cfg_.activation_bits == 1) return clipped >= 0 ? 1.0f : -1.0f;
    // 2-bit: 4 uniform levels in [-1, 1].
    const float level = std::round((clipped + 1.0f) * 1.5f);  // 0..3
    return level / 1.5f - 1.0f;
}

void QuantizedMlp::forward(const util::BitVector& x,
                           std::vector<std::vector<float>>& pre,
                           std::vector<std::vector<float>>& act) const {
    pre.assign(layers_.size(), {});
    act.assign(layers_.size() + 1, {});
    act[0].resize(num_inputs());
    for (std::size_t i = 0; i < num_inputs(); ++i) act[0][i] = x.get(i) ? 1.0f : 0.0f;

    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer& layer = layers_[l];
        quantize_layer(layer);
        const std::size_t out = layer.bias.size(), in = act[l].size();
        pre[l].assign(out, 0.0f);
        for (std::size_t o = 0; o < out; ++o) {
            const float* row = layer.wq.row(o);
            float s = layer.bias[o];
            for (std::size_t i = 0; i < in; ++i) s += row[i] * act[l][i];
            pre[l][o] = s;
        }
        act[l + 1].resize(out);
        const bool last = (l + 1 == layers_.size());
        for (std::size_t o = 0; o < out; ++o)
            act[l + 1][o] = last ? pre[l][o] : quantize_activation(pre[l][o]);
    }
}

void QuantizedMlp::train_epoch(const data::Dataset& ds) {
    if (ds.num_features != num_inputs())
        throw std::invalid_argument("QuantizedMlp::train_epoch: feature mismatch");

    std::vector<std::vector<float>> pre, act;
    for (std::size_t n = 0; n < ds.size(); ++n) {
        forward(ds.examples[n], pre, act);
        const std::size_t L = layers_.size();

        // Softmax cross-entropy gradient on the logits.
        std::vector<float> delta = act[L];
        {
            float mx = *std::max_element(delta.begin(), delta.end());
            double z = 0.0;
            for (auto& v : delta) {
                v = float(std::exp(double(v - mx)));
                z += v;
            }
            for (auto& v : delta) v = float(v / z);
            delta[ds.labels[n]] -= 1.0f;
        }

        // Backprop with STE: gradient flows through quantizers where the
        // pre-activation lies in the clip region |a| <= 1.
        for (std::size_t l = L; l-- > 0;) {
            Layer& layer = layers_[l];
            const std::size_t out = layer.bias.size(), in = act[l].size();
            std::vector<float> prev_delta(in, 0.0f);
            for (std::size_t o = 0; o < out; ++o) {
                const float d = delta[o];
                float* wrow = layer.w.row(o);
                const float* qrow = layer.wq.row(o);
                for (std::size_t i = 0; i < in; ++i) {
                    prev_delta[i] += qrow[i] * d;
                    wrow[i] -= float(cfg_.learning_rate) *
                               (d * act[l][i] + float(cfg_.weight_decay) * wrow[i]);
                    // BinaryConnect: keep shadow weights in [-1, 1] so sign
                    // flips stay reachable for the quantizer.
                    if (cfg_.weight_bits != 32)
                        wrow[i] = std::clamp(wrow[i], -1.0f, 1.0f);
                }
                layer.bias[o] -= float(cfg_.learning_rate) * d;
            }
            if (l > 0) {
                // Hidden-quantizer gradient: STE clip (|pre| <= 1) for the
                // quantized modes, exact ReLU mask for the float reference.
                for (std::size_t i = 0; i < in; ++i) {
                    if (cfg_.activation_bits == 32) {
                        if (pre[l - 1][i] < 0.0f) prev_delta[i] = 0.0f;
                    } else if (std::fabs(pre[l - 1][i]) > 1.0f) {
                        prev_delta[i] = 0.0f;
                    }
                }
            }
            delta = std::move(prev_delta);
        }
    }
}

void QuantizedMlp::fit(const data::Dataset& ds, std::size_t epochs) {
    data::Dataset copy = ds;
    for (std::size_t e = 0; e < epochs; ++e) {
        data::shuffle(copy, cfg_.seed + e + 1);
        train_epoch(copy);
    }
}

std::vector<double> QuantizedMlp::logits(const util::BitVector& x) const {
    std::vector<std::vector<float>> pre, act;
    forward(x, pre, act);
    return {act.back().begin(), act.back().end()};
}

std::uint32_t QuantizedMlp::predict(const util::BitVector& x) const {
    const auto l = logits(x);
    return std::uint32_t(std::max_element(l.begin(), l.end()) - l.begin());
}

double QuantizedMlp::evaluate(const data::Dataset& ds) const {
    if (ds.size() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < ds.size(); ++i)
        correct += predict(ds.examples[i]) == ds.labels[i];
    return double(correct) / double(ds.size());
}

std::size_t QuantizedMlp::weight_storage_bits() const {
    std::size_t bits = 0;
    for (const auto& l : layers_) bits += l.w.size() * cfg_.weight_bits;
    return bits;
}

}  // namespace matador::baseline
