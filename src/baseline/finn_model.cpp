#include "baseline/finn_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace matador::baseline {

namespace {

std::vector<std::size_t> divisors(std::size_t n) {
    std::vector<std::size_t> d;
    for (std::size_t i = 1; i <= n; ++i)
        if (n % i == 0) d.push_back(i);
    return d;
}

/// Least-parallelism folding achieving fold <= target (FINN-R balancing).
FinnFolding choose_folding(const FinnLayer& layer, std::size_t target) {
    FinnFolding best;
    best.pe = layer.out;
    best.simd = layer.in;
    best.fold = 1;
    std::size_t best_cost = layer.out * layer.in;

    for (auto pe : divisors(layer.out)) {
        for (auto simd : divisors(layer.in)) {
            const std::size_t fold = (layer.in / simd) * (layer.out / pe);
            if (fold > target) continue;
            const std::size_t cost = pe * simd;
            if (cost < best_cost || (cost == best_cost && fold < best.fold)) {
                best = {pe, simd, fold, 0, 0};
                best_cost = cost;
            }
        }
    }
    best.in = layer.in;
    best.out = layer.out;
    return best;
}

// Resource constants, calibrated against XC7Z020 FINN implementation
// reports (see EXPERIMENTS.md).  All are per-unit LUT/BRAM figures.
constexpr double kLutPerMac1b = 2.5;    ///< XNOR+popcount slice cost per 1b x 1b PE*SIMD lane
constexpr double kLutPerPeCtl = 60.0;   ///< threshold + accumulator per PE
constexpr double kLutPerLayer = 300.0;  ///< MVTU control FSM
constexpr double kLutInfra = 3500.0;    ///< DMA / AXI / width converters
constexpr double kRegPerLut = 1.5;      ///< pipeline-heavy dataflow
constexpr std::size_t kBram18Bits = 18432;
constexpr std::size_t kLutRamThresholdBits = 4096;  ///< below this: LUTRAM
constexpr std::size_t kFifoDepth = 512;
constexpr double kDmaBram36 = 3.0;  ///< same stream-DMA buffers MATADOR uses

}  // namespace

FinnEstimate estimate_finn(const std::vector<FinnLayer>& layers,
                           const FinnOptions& options) {
    if (layers.empty()) throw std::invalid_argument("estimate_finn: no layers");

    FinnEstimate e;
    e.clock_mhz = options.clock_mhz;

    double lut_logic = kLutInfra;
    double lut_mem = 0.0;
    double bram36 = kDmaBram36;
    std::size_t max_fold = 0, sum_fold = 0;

    // Input stream FIFO (booleanized image buffered at the accelerator edge).
    {
        const std::size_t in_bits = layers.front().in * layers.front().activation_bits;
        bram36 += 0.5 * std::ceil(double(in_bits) * kFifoDepth / kBram18Bits);
    }

    for (std::size_t l = 0; l < layers.size(); ++l) {
        const FinnLayer& layer = layers[l];
        const FinnFolding fold = choose_folding(layer, options.target_fold);
        e.folding.push_back(fold);
        max_fold = std::max(max_fold, fold.fold);
        sum_fold += fold.fold;

        // Compute fabric: PE*SIMD parallel 1-2 bit MACs; cost scales with
        // the partial-product width (weight bits x activation bits).
        const double mac_scale =
            kLutPerMac1b * double(layer.weight_bits * layer.activation_bits);
        lut_logic += mac_scale * double(fold.pe * fold.simd);
        lut_logic += kLutPerPeCtl * double(fold.pe);
        lut_logic += kLutPerLayer;

        // Weight storage: one partition per PE; small partitions go to
        // LUTRAM (64 bits/LUT), large ones to BRAM18.
        const std::size_t weight_bits = layer.in * layer.out * layer.weight_bits;
        const std::size_t partition_bits = weight_bits / fold.pe;
        if (partition_bits < kLutRamThresholdBits) {
            lut_mem += double(fold.pe) * std::ceil(double(partition_bits) / 64.0);
        } else {
            bram36 += 0.5 * double(fold.pe) *
                      std::ceil(double(partition_bits) / double(kBram18Bits));
        }

        // Inter-layer FIFO (except after the last layer).
        if (l + 1 < layers.size()) {
            const std::size_t act_bits = layer.out * layers[l + 1].activation_bits;
            const double fifo_bits = double(act_bits) * double(kFifoDepth);
            if (fifo_bits < double(kLutRamThresholdBits) * 8.0)
                lut_mem += std::ceil(fifo_bits / 64.0);
            else
                bram36 += 0.5 * std::ceil(fifo_bits / double(kBram18Bits));
        }
    }

    e.initiation_interval = std::max<std::size_t>(1, max_fold);
    // The MVTUs stream: the pipeline fills within roughly one initiation
    // interval plus a few cycles of per-layer latency (this matches the
    // measured FINN latencies the paper reports, e.g. 1.047us at II~105).
    e.latency_cycles = e.initiation_interval + 4 * layers.size();
    e.lut_logic = std::size_t(lut_logic);
    e.lut_mem = std::size_t(lut_mem);
    e.luts = e.lut_logic + e.lut_mem;
    e.registers = std::size_t(kRegPerLut * double(e.luts));
    e.bram36 = bram36;
    // Wide multiplexing inside the MVTUs exercises the F7/F8 slice muxes.
    e.f7_mux = std::size_t(0.015 * double(e.luts));
    e.f8_mux = std::size_t(0.001 * double(e.luts));
    e.slices = std::size_t(double(e.luts) / 1.85);  // typical packing density
    return e;
}

std::vector<FinnLayer> table2_finn_topology(const std::string& dataset) {
    // Table II: FINN model configurations (weights/activations per paper).
    if (dataset == "mnist")
        return {{784, 64, 1, 1}, {64, 64, 1, 1}, {64, 64, 1, 1}, {64, 10, 1, 1}};
    if (dataset == "kws6")
        return {{377, 512, 2, 1}, {512, 256, 2, 2}, {256, 6, 2, 2}};
    if (dataset == "cifar2")
        return {{1024, 256, 1, 1}, {256, 128, 1, 2}, {128, 2, 1, 2}};
    if (dataset == "fmnist" || dataset == "kmnist")
        return {{784, 256, 2, 1}, {256, 256, 2, 2}, {256, 10, 2, 2}};
    throw std::invalid_argument("table2_finn_topology: unknown dataset " + dataset);
}

}  // namespace matador::baseline
