// Cycle-level FINN dataflow pipeline simulator.
//
// The analytic estimator (finn_model.hpp) predicts II = max fold and
// latency ~ II + pipeline depth; this simulator *measures* both by playing
// the streaming dataflow out cycle by cycle: images enter through an input
// FIFO, each MVTU consumes one image for `fold` cycles before passing it to
// the next layer's FIFO (blocking when full), classifications emerge from
// the last layer.  The Table I bench cross-checks measured against analytic
// the same way the MATADOR side cross-checks its simulator against the
// architecture equations.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/finn_model.hpp"

namespace matador::baseline {

/// Measured pipeline behaviour.
struct FinnSimResult {
    std::size_t images_completed = 0;
    std::size_t cycles_run = 0;
    std::size_t first_latency_cycles = 0;   ///< image 0: inject -> retire
    double mean_initiation_interval = 0.0;  ///< steady-state cycles/image
    std::vector<std::size_t> retire_cycles; ///< per image
};

/// Simulate `images` images through the folded pipeline.
/// `fifo_depth` models the inter-layer stream buffers (images, not words;
/// FINN FIFOs hold around one image of activations).
FinnSimResult simulate_finn_pipeline(const std::vector<FinnFolding>& folding,
                                     std::size_t images, std::size_t fifo_depth = 2,
                                     std::size_t max_cycles = 1u << 24);

}  // namespace matador::baseline
