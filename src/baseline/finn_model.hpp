// FINN-style streaming dataflow architecture model.
//
// FINN compiles a quantized MLP into a pipeline of Matrix-Vector-Threshold
// Units (MVTUs), one per layer, each folded by (PE, SIMD):
//     fold(layer) = (in / SIMD) * (out / PE)      [cycles per image]
//     II          = max fold over layers          [steady-state]
//     latency     = sum of folds + pipeline depth [first image]
// Weights stay on chip in per-PE partitions (BRAM), activations stream
// through FIFOs.  This module reproduces FINN-R's analytic estimator: given
// a topology and a target fold, it picks the folding and derives cycles,
// LUTs, registers and BRAM.  Constants are calibrated against the
// XC7Z020 implementation reports the paper's Table I cites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace matador::baseline {

/// One fully-connected layer to be compiled into an MVTU.
struct FinnLayer {
    std::size_t in = 0;        ///< input neurons
    std::size_t out = 0;       ///< output neurons
    unsigned weight_bits = 1;
    unsigned activation_bits = 1;  ///< of the *input* activations
};

/// Chosen folding for one MVTU.
struct FinnFolding {
    std::size_t pe = 1;    ///< output parallelism (divides out)
    std::size_t simd = 1;  ///< input parallelism (divides in)
    std::size_t fold = 0;  ///< (in/simd) * (out/pe) cycles per image
    std::size_t in = 0;    ///< layer input neurons (for head-latency math)
    std::size_t out = 0;   ///< layer output neurons
};

/// Whole-network performance / resource estimate.
struct FinnEstimate {
    std::vector<FinnFolding> folding;
    std::size_t initiation_interval = 0;  ///< cycles per image
    std::size_t latency_cycles = 0;       ///< first-image latency
    double clock_mhz = 100.0;

    std::size_t luts = 0;
    std::size_t lut_logic = 0;
    std::size_t lut_mem = 0;       ///< LUTRAM (FIFOs, small weight partitions)
    std::size_t registers = 0;
    double bram36 = 0.0;
    std::size_t f7_mux = 0;
    std::size_t f8_mux = 0;
    std::size_t slices = 0;

    double latency_us() const { return double(latency_cycles) / clock_mhz; }
    double throughput_inf_per_s() const {
        return initiation_interval == 0
                   ? 0.0
                   : clock_mhz * 1e6 / double(initiation_interval);
    }
};

/// Estimator options.
struct FinnOptions {
    double clock_mhz = 100.0;
    /// Target cycles-per-image; folding is chosen as the least parallelism
    /// that achieves fold <= target for every layer (FINN-R's "balancing").
    std::size_t target_fold = 1024;
};

/// Derive folding + performance + resources for a topology.
FinnEstimate estimate_finn(const std::vector<FinnLayer>& layers,
                           const FinnOptions& options);

/// The paper's Table II FINN topologies by dataset key
/// ("mnist", "kws6", "cifar2", "fmnist", "kmnist").
std::vector<FinnLayer> table2_finn_topology(const std::string& dataset);

}  // namespace matador::baseline
