// Artifact cache: config-hash-keyed reuse of expensive front-end artifacts.
//
// Design-space sweeps (Table I ablations) vary backend knobs — bus width,
// clock, device — hundreds of times per study, but the trained model depends
// only on the *front-end* slice of the FlowConfig (TM hyperparameters +
// epochs) and the dataset contents.  The cache keys trained models by a
// stable 64-bit hash of exactly that slice, so backend-only sweep points
// skip retraining entirely.
//
// The cache is thread-safe and *single-flight*: concurrent sweep workers
// asking for the same key block until the first worker has trained, then
// share the result — training runs exactly once per distinct key.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/flow.hpp"
#include "data/dataset.hpp"
#include "model/trained_model.hpp"

namespace matador::core {

/// Streaming FNV-1a hasher for building cache keys out of config fields
/// and dataset fingerprints.
class Fnv1a {
public:
    void bytes(const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 1099511628211ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void f64(double v) { bytes(&v, sizeof v); }
    std::uint64_t digest() const { return h_; }

private:
    std::uint64_t h_ = 1469598103934665603ull;
};

/// Hash of the FlowConfig slice the front end (training) depends on.
/// Two configs with equal front-end hashes train identical models.
std::uint64_t frontend_config_hash(const FlowConfig& cfg);

/// Stable content fingerprint of a dataset (shape, labels, feature bits).
std::uint64_t dataset_fingerprint(const data::Dataset& ds);

/// One cached front-end artifact set.
struct TrainedArtifact {
    std::shared_ptr<const model::TrainedModel> model;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
};

/// Thread-safe, single-flight cache of trained front-end artifacts.
class ArtifactCache {
public:
    struct Stats {
        std::size_t hits = 0;    ///< lookups served from a finished entry
        std::size_t misses = 0;  ///< lookups that ran the compute function
        std::size_t entries = 0;
    };

    /// Lookup without computing (no single-flight wait; counts no stats).
    std::optional<TrainedArtifact> find(std::uint64_t key) const;

    /// Return the cached artifact for `key`, computing it with `fn` on the
    /// first request.  Concurrent callers with the same key block until the
    /// first finishes; `fn` runs exactly once per key.  Sets `*was_cached`
    /// (when non-null) to whether the call was served without running `fn`.
    TrainedArtifact get_or_compute(std::uint64_t key,
                                   const std::function<TrainedArtifact()>& fn,
                                   bool* was_cached = nullptr);

    Stats stats() const;
    void clear();

private:
    struct Slot {
        std::mutex mu;
        bool computed = false;
        TrainedArtifact artifact;
    };

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> slots_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
};

}  // namespace matador::core
