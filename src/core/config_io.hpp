// FlowConfig <-> text: the persisted form of the GUI's option panel.
//
// A flow configuration is a plain key=value file ('#' comments allowed),
// so runs are scriptable and reproducible; the CLI maps --key value
// arguments onto the same setter.
#pragma once

#include <iosfwd>
#include <string>

#include "core/flow.hpp"

namespace matador::core {

/// Apply one option.  Returns false for an unknown key; throws
/// std::invalid_argument on a malformed value for a known key.
///
/// Known keys:
///   clauses_per_class, threshold, specificity, boost_true_positive,
///   feedback (fast|exact), tm_seed, epochs,
///   bus_width, clock_mhz (number, or 0 for auto), argmax_levels_per_stage,
///   adder_levels_per_stage, device, strash, verify_vectors,
///   sim_datapoints, rtl_output_dir, skip_rtl_verification, cache_dir
bool apply_flow_option(FlowConfig& cfg, const std::string& key,
                       const std::string& value);

/// Parse a whole config file; unknown keys throw (they are typos).
FlowConfig load_flow_config(std::istream& in);
FlowConfig load_flow_config_file(const std::string& path);

/// Serialize (round-trips through load_flow_config).
void save_flow_config(const FlowConfig& cfg, std::ostream& out);

}  // namespace matador::core
