#include "core/config_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace matador::core {

namespace {

std::size_t parse_size(const std::string& v, const std::string& key) {
    try {
        return std::stoul(v);
    } catch (...) {
        throw std::invalid_argument("config: bad value for " + key + ": " + v);
    }
}

double parse_double(const std::string& v, const std::string& key) {
    try {
        return std::stod(v);
    } catch (...) {
        throw std::invalid_argument("config: bad value for " + key + ": " + v);
    }
}

bool parse_bool(const std::string& v, const std::string& key) {
    const auto lower = util::to_lower(v);
    if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
    if (lower == "0" || lower == "false" || lower == "no" || lower == "off")
        return false;
    throw std::invalid_argument("config: bad boolean for " + key + ": " + v);
}

/// Reject a TM hyperparameter value that would silently poison training
/// (NaN feedback probabilities, unbalanced polarity alternation) with an
/// error naming the exact key = value assignment.
[[noreturn]] void reject(const std::string& key, const std::string& value,
                         const std::string& why) {
    throw std::invalid_argument("config: " + key + " = " + value + " " + why);
}

}  // namespace

bool apply_flow_option(FlowConfig& cfg, const std::string& key,
                       const std::string& value) {
    if (key == "clauses_per_class") {
        const std::size_t n = parse_size(value, key);
        if (n == 0)
            reject(key, value, "is invalid: need at least one clause per class");
        if (n % 2 != 0)
            reject(key, value,
                   "is invalid: must be even so +/- polarity alternation is "
                   "balanced");
        cfg.tm.clauses_per_class = n;
    } else if (key == "threshold") {
        const long long t = (long long)parse_size(value, key);
        if (t <= 0 || t > std::numeric_limits<int>::max())
            reject(key, value,
                   "is invalid: the class-sum clamp T must be > 0 and fit an "
                   "int (feedback probability is (T -/+ clamp(v)) / 2T)");
        cfg.tm.threshold = int(t);
    } else if (key == "specificity") {
        const double s = parse_double(value, key);
        if (!(s > 1.0))
            reject(key, value,
                   "is invalid: specificity s must be > 1 (literal masks are "
                   "Bernoulli(1/s))");
        cfg.tm.specificity = s;
    } else if (key == "boost_true_positive") {
        cfg.tm.boost_true_positive = parse_bool(value, key);
    } else if (key == "feedback") {
        const auto lower = util::to_lower(value);
        if (lower == "fast")
            cfg.tm.feedback = tm::FeedbackMode::kFastPow2;
        else if (lower == "exact")
            cfg.tm.feedback = tm::FeedbackMode::kExact;
        else
            throw std::invalid_argument("config: feedback must be fast|exact");
    } else if (key == "tm_seed") {
        cfg.tm.seed = parse_size(value, key);
    } else if (key == "epochs") {
        cfg.epochs = parse_size(value, key);
    } else if (key == "train_threads") {
        cfg.train_threads = parse_size(value, key);
    } else if (key == "eval_every") {
        cfg.eval_every = parse_size(value, key);
    } else if (key == "patience") {
        cfg.patience = parse_size(value, key);
    } else if (key == "bus_width") {
        cfg.arch.bus_width = parse_size(value, key);
    } else if (key == "clock_mhz") {
        const double mhz = parse_double(value, key);
        cfg.auto_frequency = mhz <= 0.0;
        if (mhz > 0.0) cfg.arch.clock_mhz = mhz;
    } else if (key == "argmax_levels_per_stage") {
        cfg.arch.argmax_levels_per_stage = unsigned(parse_size(value, key));
    } else if (key == "adder_levels_per_stage") {
        cfg.arch.adder_levels_per_stage = unsigned(parse_size(value, key));
    } else if (key == "device") {
        cfg.device = value;
    } else if (key == "strash") {
        cfg.strash = parse_bool(value, key);
    } else if (key == "verify_vectors") {
        cfg.verify_vectors = parse_size(value, key);
    } else if (key == "sim_datapoints") {
        cfg.sim_datapoints = parse_size(value, key);
    } else if (key == "rtl_output_dir") {
        cfg.rtl_output_dir = value;
    } else if (key == "skip_rtl_verification") {
        cfg.skip_rtl_verification = parse_bool(value, key);
    } else if (key == "verify_sat") {
        cfg.verify_sat = parse_bool(value, key);
    } else if (key == "induction_k") {
        cfg.induction_k = parse_size(value, key);
    } else if (key == "cache_dir") {
        cfg.cache_dir = value;
    } else {
        return false;
    }
    return true;
}

FlowConfig load_flow_config(std::istream& in) {
    FlowConfig cfg;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string before_comment = line.substr(0, line.find('#'));
        const auto stripped = util::trim(before_comment);
        if (stripped.empty()) continue;
        const auto eq = stripped.find('=');
        if (eq == std::string_view::npos)
            throw std::runtime_error("config line " + std::to_string(line_no) +
                                     ": expected key=value");
        const std::string key{util::trim(stripped.substr(0, eq))};
        const std::string value{util::trim(stripped.substr(eq + 1))};
        if (!apply_flow_option(cfg, key, value))
            throw std::runtime_error("config line " + std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
    return cfg;
}

FlowConfig load_flow_config_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_flow_config_file: cannot open " + path);
    return load_flow_config(in);
}

void save_flow_config(const FlowConfig& cfg, std::ostream& out) {
    out << "# MATADOR flow configuration\n";
    out << "clauses_per_class = " << cfg.tm.clauses_per_class << "\n";
    out << "threshold = " << cfg.tm.threshold << "\n";
    out << "specificity = " << cfg.tm.specificity << "\n";
    out << "boost_true_positive = " << (cfg.tm.boost_true_positive ? "true" : "false")
        << "\n";
    out << "feedback = "
        << (cfg.tm.feedback == tm::FeedbackMode::kFastPow2 ? "fast" : "exact") << "\n";
    out << "tm_seed = " << cfg.tm.seed << "\n";
    out << "epochs = " << cfg.epochs << "\n";
    // train_threads is an execution knob (like cache_dir): it never changes
    // the trained model, so the default 0 is omitted to keep config texts -
    // and therefore distributed grid hashes - identical across machines
    // that merely size their trainers differently.
    if (cfg.train_threads != 0)
        out << "train_threads = " << cfg.train_threads << "\n";
    out << "eval_every = " << cfg.eval_every << "\n";
    out << "patience = " << cfg.patience << "\n";
    out << "bus_width = " << cfg.arch.bus_width << "\n";
    out << "clock_mhz = " << (cfg.auto_frequency ? 0.0 : cfg.arch.clock_mhz) << "\n";
    out << "argmax_levels_per_stage = " << cfg.arch.argmax_levels_per_stage << "\n";
    out << "adder_levels_per_stage = " << cfg.arch.adder_levels_per_stage << "\n";
    out << "device = " << cfg.device << "\n";
    out << "strash = " << (cfg.strash ? "true" : "false") << "\n";
    out << "verify_vectors = " << cfg.verify_vectors << "\n";
    out << "sim_datapoints = " << cfg.sim_datapoints << "\n";
    if (!cfg.rtl_output_dir.empty())
        out << "rtl_output_dir = " << cfg.rtl_output_dir << "\n";
    out << "skip_rtl_verification = "
        << (cfg.skip_rtl_verification ? "true" : "false") << "\n";
    // The SAT tier knobs are execution knobs too: defaults are omitted so
    // config texts - and distributed grid hashes - stay identical with
    // configs written before the prove tier existed.
    if (cfg.verify_sat) out << "verify_sat = true\n";
    if (cfg.induction_k != 1) out << "induction_k = " << cfg.induction_k << "\n";
    if (!cfg.cache_dir.empty()) out << "cache_dir = " << cfg.cache_dir << "\n";
}

}  // namespace matador::core
