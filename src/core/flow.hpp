// MatadorFlow: the end-to-end automation pipeline (Fig. 6).
//
// The GUI of the paper drives exactly these stages; here they are a library
// API (the examples and benches are the "GUI"):
//   1. train        - Tsetlin Machine training on a booleanized dataset
//                     (or import of an externally trained model - the
//                     yellow flow),
//   2. analyze      - sparsity + expression-sharing statistics,
//   3. architect    - packet plan, pipeline stages, timing-driven clock
//                     selection (50-65 MHz band),
//   4. generate     - HCB AIGs, LUT mapping, full Verilog design,
//   5. verify       - expression / netlist / RTL-text equivalence ladder
//                     plus system-level cycle-accurate streaming check
//                     (the auto-debug flow),
//   6. report       - Table-I-style resource/power/latency/throughput row.
//
// MatadorFlow is now a thin compatibility shim over the staged Pipeline API
// in pipeline.hpp, which exposes each stage as a named pass with status,
// diagnostics, per-stage timing, run-from/stop-after selection, artifact
// caching, and a multi-threaded sweep driver (sweep.hpp).  New code should
// prefer core::Pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cost/device.hpp"
#include "cost/power_model.hpp"
#include "cost/resource_model.hpp"
#include "cost/timing_model.hpp"
#include "data/dataset.hpp"
#include "model/architecture.hpp"
#include "model/sharing_analysis.hpp"
#include "model/trained_model.hpp"
#include "rtl/verification.hpp"
#include "tm/tsetlin_machine.hpp"
#include "train/fit.hpp"

namespace matador::core {

/// All user-facing knobs of the flow (the GUI form of Fig. 6(a)).
struct FlowConfig {
    tm::TmConfig tm;                 ///< training hyperparameters
    std::size_t epochs = 10;
    /// Trainer worker threads (train::ParallelTrainer); 0 = all hardware
    /// threads.  Never affects the trained model - training is
    /// bit-reproducible at any thread count - so, like cache_dir, it stays
    /// out of every config hash.
    std::size_t train_threads = 0;
    /// Evaluate accuracy every this many epochs (0 = final epoch only).
    std::size_t eval_every = 0;
    /// Early stopping patience in evaluations (0 = off).  See train/fit.hpp.
    std::size_t patience = 0;
    model::ArchOptions arch;         ///< bus width, clock, pipelining
    bool auto_frequency = true;      ///< pick clock from the timing model
    std::string device = "z7020";
    bool strash = true;              ///< logic sharing (false = DON'T_TOUCH)
    std::size_t verify_vectors = 24; ///< random vectors per verification level
    std::size_t sim_datapoints = 32; ///< streaming datapoints for system check
    std::string rtl_output_dir;      ///< empty = keep the design in memory
    bool skip_rtl_verification = false;  ///< fast mode for large sweeps
    /// Run the SAT equivalence tier (verify level 3): per-output
    /// scalar-vs-netlist miter proofs plus k-induction over the chain.
    bool verify_sat = false;
    /// Induction depth of the SAT tier's sequential proof (>= 1).
    std::size_t induction_k = 1;
    /// Root of the persistent artifact store's disk tier; empty = the
    /// memory tier only.  Never enters any config hash - it decides where
    /// artifacts live, not what they are.
    std::string cache_dir;
};

/// Everything the flow produces.
struct FlowResult {
    model::TrainedModel trained_model;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
    /// How training ended (train::ParallelTrainer; empty/default when the
    /// model was imported instead of trained).
    std::size_t train_epochs_run = 0;
    std::string train_stop_reason;  ///< "max-epochs" | "early-stop" | ""
    std::size_t train_best_epoch = 0;
    std::vector<train::EpochMetrics> accuracy_history;

    model::ArchParams arch;
    model::SparsityStats sparsity;
    model::SharingStats sharing;

    std::size_t hcb_mapped_luts = 0;   ///< sum over HCBs (6-LUT mapping)
    unsigned hcb_max_depth = 0;        ///< deepest HCB in LUT levels
    std::size_t max_feature_fanout = 0;

    cost::TimingReport timing;
    cost::ResourceReport resources;
    cost::PowerReport power;

    rtl::VerificationReport verification;
    bool system_verified = false;      ///< cycle sim matches golden + equations
    std::size_t measured_latency_cycles = 0;
    double measured_ii = 0.0;

    double latency_us = 0.0;
    double throughput_inf_per_s = 0.0;

    std::vector<std::string> rtl_files;  ///< when rtl_output_dir was set
};

/// The classic one-shot flow driver (compatibility shim over core::Pipeline).
class MatadorFlow {
public:
    explicit MatadorFlow(FlowConfig cfg) : cfg_(std::move(cfg)) {}

    const FlowConfig& config() const { return cfg_; }

    /// Full pipeline: train on `train`, evaluate on `test`, then
    /// architect / generate / verify / measure.
    FlowResult run(const data::Dataset& train, const data::Dataset& test) const;

    /// The yellow import flow: skip training, start from an existing model.
    /// `test` (optional) supplies the accuracy column and seeds the
    /// system-level streaming check (random vectors otherwise).
    FlowResult run_with_model(const model::TrainedModel& m,
                              const data::Dataset* test) const;

private:
    FlowConfig cfg_;
};

}  // namespace matador::core
