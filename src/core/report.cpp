#include "core/report.hpp"

#include <sstream>

#include "util/string_utils.hpp"

namespace matador::core {

using util::format_double;
using util::with_commas;

TableRow to_table_row(const FlowResult& r, const std::string& name) {
    TableRow row;
    row.model_name = name;
    row.luts = r.resources.luts;
    row.registers = r.resources.registers;
    row.f7_mux = r.resources.f7_mux;
    row.f8_mux = r.resources.f8_mux;
    row.slices = r.resources.slices;
    row.lut_logic = r.resources.lut_logic;
    row.lut_mem = r.resources.lut_mem;
    row.bram36 = r.resources.bram36;
    row.accuracy_pct = r.test_accuracy * 100.0;
    row.total_power_w = r.power.total_w;
    row.dynamic_power_w = r.power.dynamic_w;
    row.latency_us = r.latency_us;
    row.throughput_inf_s = r.throughput_inf_per_s;
    return row;
}

std::string format_table(
    const std::vector<std::pair<std::string, std::vector<TableRow>>>& groups) {
    std::ostringstream os;
    auto line = [&] {
        os << std::string(132, '-') << "\n";
    };
    line();
    os << "Model        LUTs    SliceReg  F7   F8   Slice   LUTlogic LUTmem  "
          "BRAM   Acc(%)  TotPwr(W) DynPwr(W) Lat(us)  Thrpt(inf/s)\n";
    line();
    for (const auto& [dataset, rows] : groups) {
        os << dataset << "\n";
        for (const auto& r : rows) {
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "%-11s %7zu %9zu %4zu %4zu %7zu %8zu %7zu %6.1f %7.2f "
                          "%9.3f %9.3f %8.3f %13s\n",
                          r.model_name.c_str(), r.luts, r.registers, r.f7_mux,
                          r.f8_mux, r.slices, r.lut_logic, r.lut_mem, r.bram36,
                          r.accuracy_pct, r.total_power_w, r.dynamic_power_w,
                          r.latency_us,
                          with_commas((long long)(r.throughput_inf_s)).c_str());
            os << buf;
        }
        line();
    }
    return os.str();
}

std::string format_flow_summary(const FlowResult& r, const std::string& title) {
    std::ostringstream os;
    os << "=== MATADOR flow summary: " << title << " ===\n";
    os << "model: " << r.arch.input_bits << " input bits, " << r.arch.num_classes
       << " classes, " << r.arch.clauses_per_class << " clauses/class\n";
    os << "accuracy: train " << format_double(r.train_accuracy * 100, 2)
       << "%  test " << format_double(r.test_accuracy * 100, 2) << "%\n";
    os << "sparsity: include density " << format_double(r.sparsity.include_density * 100, 3)
       << "%  (" << r.sparsity.total_includes << " includes, "
       << r.sparsity.empty_clauses << " empty clauses of " << r.sparsity.total_clauses
       << ")\n";
    os << "sharing: mean partial-clause sharing ratio "
       << format_double(r.sharing.mean_sharing_ratio * 100, 1) << "%, "
       << r.sharing.duplicate_full_clauses << " duplicate full clauses\n";
    os << "architecture: " << r.arch.plan.num_packets() << " packets x "
       << r.arch.options.bus_width << "b bus, class-sum stages "
       << r.arch.class_sum_stages << ", argmax stages " << r.arch.argmax_stages
       << "\n";
    os << "timing: est. critical path " << format_double(r.timing.critical_path_ns, 2)
       << " ns (fanout " << r.max_feature_fanout << ", depth " << r.hcb_max_depth
       << "), clock " << format_double(r.arch.options.clock_mhz, 1) << " MHz\n";
    os << "resources: " << r.resources.luts << " LUTs (" << r.resources.lut_logic
       << " logic / " << r.resources.lut_mem << " mem), " << r.resources.registers
       << " registers, BRAM " << format_double(r.resources.bram36, 1) << "\n";
    os << "power: total " << format_double(r.power.total_w, 3) << " W, dynamic "
       << format_double(r.power.dynamic_w, 3) << " W (fabric "
       << format_double(r.power.fabric_dynamic_w, 3) << " W)\n";
    os << "performance: latency " << r.arch.latency_cycles() << " cycles = "
       << format_double(r.latency_us, 3) << " us, II "
       << r.arch.initiation_interval() << " cycles, throughput "
       << with_commas((long long)(r.throughput_inf_per_s)) << " inf/s\n";
    os << "verification: expressions " << (r.verification.expressions_match_model ? "OK" : "FAIL")
       << ", HCB netlists " << (r.verification.hcb_aigs_match_expressions ? "OK" : "FAIL")
       << ", RTL cosim " << (r.verification.rtl_matches_aigs ? "OK" : "FAIL")
       << ", system (cycle-accurate) " << (r.system_verified ? "OK" : "FAIL") << "\n";
    if (!r.verification.first_failure.empty())
        os << "first failure: " << r.verification.first_failure << "\n";
    if (!r.rtl_files.empty())
        os << "RTL: " << r.rtl_files.size() << " files written\n";
    return os.str();
}

}  // namespace matador::core
