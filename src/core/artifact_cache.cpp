#include "core/artifact_cache.hpp"

namespace matador::core {

std::uint64_t frontend_config_hash(const FlowConfig& cfg) {
    Fnv1a h;
    h.u64(cfg.tm.clauses_per_class);
    h.u64(std::uint64_t(std::int64_t(cfg.tm.threshold)));
    h.f64(cfg.tm.specificity);
    h.u64(cfg.tm.boost_true_positive ? 1 : 0);
    h.u64(std::uint64_t(cfg.tm.feedback));
    h.u64(cfg.tm.seed);
    h.u64(cfg.epochs);
    return h.digest();
}

std::uint64_t dataset_fingerprint(const data::Dataset& ds) {
    Fnv1a h;
    h.u64(ds.num_features);
    h.u64(ds.num_classes);
    h.u64(ds.size());
    for (auto label : ds.labels) h.u64(label);
    for (const auto& x : ds.examples) h.u64(x.hash());
    return h.digest();
}

std::optional<TrainedArtifact> ArtifactCache::find(std::uint64_t key) const {
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = slots_.find(key);
        if (it == slots_.end()) return std::nullopt;
        slot = it->second;
    }
    // Non-blocking, as documented: an in-flight compute holds slot->mu for
    // its whole run, so a plain lock here would wait on it.
    std::unique_lock<std::mutex> lock(slot->mu, std::try_to_lock);
    if (!lock.owns_lock() || !slot->computed) return std::nullopt;
    return slot->artifact;
}

TrainedArtifact ArtifactCache::get_or_compute(
    std::uint64_t key, const std::function<TrainedArtifact()>& fn,
    bool* was_cached) {
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto& entry = slots_[key];
        if (!entry) entry = std::make_shared<Slot>();
        slot = entry;
    }
    // Per-key lock: the first caller computes while same-key callers wait;
    // other keys proceed in parallel.
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->computed) {
        hits_++;
        if (was_cached) *was_cached = true;
        return slot->artifact;
    }
    slot->artifact = fn();
    slot->computed = true;
    misses_++;
    if (was_cached) *was_cached = false;
    return slot->artifact;
}

ArtifactCache::Stats ArtifactCache::stats() const {
    Stats s;
    s.hits = hits_.load();
    s.misses = misses_.load();
    std::lock_guard<std::mutex> lock(mu_);
    s.entries = slots_.size();
    return s;
}

void ArtifactCache::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
    hits_ = 0;
    misses_ = 0;
}

}  // namespace matador::core
