// Design-space sweep driver: fan a grid of FlowConfig variants across
// worker threads that share one ArtifactCache, so sweep points differing
// only in backend knobs (bus width, clock, device, strash) reuse the same
// trained model instead of retraining per point.
//
// Results come back in grid order regardless of thread scheduling, and a
// given (grid, datasets) pair produces identical results at any thread
// count: every stage is a deterministic function of its config + inputs,
// and the cache only ever stores that deterministic result.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/pipeline.hpp"

namespace matador::core {

/// One evaluated grid point.
struct SweepPoint {
    std::size_t index = 0;  ///< position in the input grid
    FlowConfig cfg;
    FlowResult result;
    bool ok = false;
    std::array<StageRecord, kNumStages> stages;
    std::vector<Diagnostic> diagnostics;
};

struct SweepOptions {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// Stage range per point (default: the full pipeline).
    StageRange range{};
    /// Shared front-end cache; created internally when null.
    std::shared_ptr<ArtifactCache> cache;
};

struct SweepResult {
    std::vector<SweepPoint> points;  ///< grid order
    ArtifactCache::Stats cache_stats;
    unsigned threads_used = 0;
    double wall_seconds = 0.0;
};

/// Free-function form of Pipeline::sweep.
SweepResult sweep(const data::Dataset& train, const data::Dataset& test,
                  const std::vector<FlowConfig>& grid,
                  const SweepOptions& options = {});

/// Cartesian grid expansion over a base config: each axis is a FlowConfig
/// key (see config_io.hpp) with the values to try.  Axis order is
/// outermost-first in the returned grid.  Unknown keys / bad values throw.
std::vector<FlowConfig> expand_grid(
    const FlowConfig& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes);

}  // namespace matador::core
