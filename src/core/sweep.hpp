// Design-space sweep driver: fan a grid of FlowConfig variants across
// worker threads that share one ArtifactStore, so sweep points differing
// only in backend knobs reuse the same trained model (and, for points
// differing only in clock/device, the same HCB netlists and LUT mapping)
// instead of recomputing per point.  With a persistent store (cache_dir),
// a restarted sweep rehydrates from the disk tier and trains zero models.
//
// Results come back in grid order regardless of thread scheduling, and a
// given (grid, datasets) pair produces identical results at any thread
// count: every stage is a deterministic function of its config + inputs,
// and the store only ever holds that deterministic result.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/pipeline.hpp"

namespace matador::core {

/// One evaluated grid point.
struct SweepPoint {
    std::size_t index = 0;  ///< position in the input grid
    FlowConfig cfg;
    FlowResult result;
    bool ok = false;
    std::array<StageRecord, kNumStages> stages;
    std::vector<Diagnostic> diagnostics;
};

struct SweepOptions {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// Stage range per point (default: the full pipeline).
    StageRange range{};
    /// Shared artifact store.  When null, one is created internally over
    /// the first grid point's cache_dir (memory-only if that is empty).
    std::shared_ptr<ArtifactStore> store;
};

struct SweepResult {
    std::vector<SweepPoint> points;  ///< grid order
    /// Per-stage, per-tier hit/miss counters of the shared store.
    ArtifactStore::Stats store_stats;
    unsigned threads_used = 0;
    double wall_seconds = 0.0;
};

/// Free-function form of Pipeline::sweep.
SweepResult sweep(const data::Dataset& train, const data::Dataset& test,
                  const std::vector<FlowConfig>& grid,
                  const SweepOptions& options = {});

/// Cartesian grid expansion over a base config: each axis is a FlowConfig
/// key (see config_io.hpp) with the values to try.  Axis order is
/// outermost-first in the returned grid.  Unknown keys / bad values throw.
std::vector<FlowConfig> expand_grid(
    const FlowConfig& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes);

}  // namespace matador::core
