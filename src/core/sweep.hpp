// Design-space sweep driver: fan a grid of FlowConfig variants across
// worker threads that share one ArtifactStore, so sweep points differing
// only in backend knobs reuse the same trained model (and, for points
// differing only in clock/device, the same HCB netlists and LUT mapping)
// instead of recomputing per point.  With a persistent store (cache_dir),
// a restarted sweep rehydrates from the disk tier and trains zero models.
//
// Results come back in grid order regardless of thread scheduling, and a
// given (grid, datasets) pair produces identical results at any thread
// count: every stage is a deterministic function of its config + inputs,
// and the store only ever holds that deterministic result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/json.hpp"

namespace matador::core {

/// One evaluated grid point.
struct SweepPoint {
    std::size_t index = 0;  ///< position in the input grid
    FlowConfig cfg;
    FlowResult result;
    bool ok = false;
    std::array<StageRecord, kNumStages> stages;
    std::vector<Diagnostic> diagnostics;
};

struct SweepOptions {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// Stage range per point (default: the full pipeline).
    StageRange range{};
    /// Shared artifact store.  When null, one is created internally over
    /// the first grid point's cache_dir (memory-only if that is empty).
    std::shared_ptr<ArtifactStore> store;
};

struct SweepResult {
    std::vector<SweepPoint> points;  ///< grid order
    /// Per-stage, per-tier hit/miss counters of the shared store.
    ArtifactStore::Stats store_stats;
    unsigned threads_used = 0;
    double wall_seconds = 0.0;
};

/// Free-function form of Pipeline::sweep.
SweepResult sweep(const data::Dataset& train, const data::Dataset& test,
                  const std::vector<FlowConfig>& grid,
                  const SweepOptions& options = {});

/// Cartesian grid expansion over a base config: each axis is a FlowConfig
/// key (see config_io.hpp) with the values to try.  Axis order is
/// outermost-first in the returned grid.  Unknown keys / bad values throw.
std::vector<FlowConfig> expand_grid(
    const FlowConfig& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes);

/// Evaluate one grid point exactly as a sweep worker does (exceptions fold
/// into the point's diagnostics, never escape).  This is the shared kernel
/// of the in-process sweep above and the distributed shard runner
/// (src/dist/): both produce bit-identical SweepPoints for the same inputs.
SweepPoint run_sweep_point(std::size_t index, const FlowConfig& cfg,
                           const data::Dataset& train, const data::Dataset& test,
                           const StageRange& range,
                           const std::shared_ptr<ArtifactStore>& store);

// ---------------------------------------------------------------------------
// JSON serialization
//
// Powers `matador sweep --out results.json` (machine-readable sweep output)
// and the distributed shard manifests under <cache_dir>/results/ that the
// merge step (src/dist/sweep_merge.hpp) reassembles.  Round-trips are exact:
// doubles keep their bits, the trained model embeds as its versioned
// MATADOR-TM text, and the config embeds as its config_io key=value text.
// ---------------------------------------------------------------------------

/// Schema version of the documents below; readers reject newer versions.
/// v2 added the training record (epochs run, stop reason, accuracy
/// history) to FlowResult and the per-stage detail string; v1 documents
/// still load, with those fields defaulted.
inline constexpr unsigned kSweepJsonVersion = 2;

util::Json flow_result_to_json(const FlowResult& r);
FlowResult flow_result_from_json(const util::Json& j);

util::Json sweep_point_to_json(const SweepPoint& p);
SweepPoint sweep_point_from_json(const util::Json& j);

util::Json store_stats_to_json(const ArtifactStore::Stats& s);
ArtifactStore::Stats store_stats_from_json(const util::Json& j);

util::Json sweep_result_to_json(const SweepResult& r);
SweepResult sweep_result_from_json(const util::Json& j);

/// FlowConfig <-> the config_io key=value text (exact round-trip; used as
/// the embedded config form in the JSON documents above).
std::string flow_config_to_text(const FlowConfig& cfg);
FlowConfig flow_config_from_text(const std::string& text);

/// Order-sensitive content hash of a grid (over each point's config text).
/// The distributed work queue stores it to refuse mixing two different
/// sweeps in one queue directory.
std::uint64_t grid_content_hash(const std::vector<FlowConfig>& grid);

}  // namespace matador::core
