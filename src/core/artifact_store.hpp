// ArtifactStore: two-tier, stage-scoped caching of expensive pipeline
// artifacts, keyed by per-stage slices of the FlowConfig.
//
// Design-space sweeps (Table I ablations) re-run the Fig. 6 flow hundreds
// of times while varying only backend knobs.  Each stage's artifact depends
// on a distinct config slice:
//
//   train    -> frontend_config_hash (TM hyperparameters + epochs) plus the
//               dataset fingerprints: the TrainedArtifact,
//   generate -> backend_config_hash (model content hash + bus_width +
//               strash): the GeneratedArtifact (HCB AIGs + LUT mapping) -
//               clock and device do NOT enter the key, so clock/device-only
//               sweep points skip HCB construction and mapping entirely,
//   lint     -> backend_config_hash again: the LintArtifact (static-analysis
//               report over the generated design), persisted as JSON.
//
// Each stage slot is backed by two tiers:
//
//   memory - thread-safe and single-flight: concurrent sweep workers asking
//            for the same key block until the first has computed, then
//            share the result (the compute runs exactly once per key),
//   disk   - optional (cache_dir != ""), laid out as
//            <cache_dir>/<stage>/<hash16>/ with a versioned manifest.
//            Models persist through TrainedModel::save/load; HCB netlists
//            persist as the emitted Verilog and are parsed back through the
//            structural parser, with a byte-identity self-check on load.
//            Corrupt, truncated, or future-version entries are skipped with
//            a warning (reported through the optional warn sink) and
//            recomputed - never trusted.
//
// A store outlives any single pipeline: sweeps share one across workers,
// and a fresh process pointed at the same cache_dir rehydrates from disk
// and trains / generates zero artifacts for known keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flow.hpp"
#include "data/dataset.hpp"
#include "lint/lint.hpp"
#include "model/trained_model.hpp"
#include "rtl/hcb_builder.hpp"
#include "sat/prove.hpp"
#include "train/fit.hpp"

namespace matador::core {

/// Streaming FNV-1a hasher for building cache keys out of config fields
/// and dataset fingerprints.
class Fnv1a {
public:
    void bytes(const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 1099511628211ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void f64(double v) { bytes(&v, sizeof v); }
    std::uint64_t digest() const { return h_; }

private:
    std::uint64_t h_ = 1469598103934665603ull;
};

/// Hash of the FlowConfig slice the front end (training) depends on.
/// Two configs with equal front-end hashes train identical models.
std::uint64_t frontend_config_hash(const FlowConfig& cfg);

/// Hash of the slice the generate stage depends on: the trained model's
/// content hash plus bus_width and strash.  Clock, device, and every other
/// backend knob are deliberately excluded - HCB AIGs and LUT mapping do
/// not depend on them.
std::uint64_t backend_config_hash(const FlowConfig& cfg, std::uint64_t model_hash);

/// Cache key of the lint rung: the backend hash folded with the lint
/// subsystem's version.  A cached verdict is only as good as the checker
/// that produced it - keying by the backend hash alone (the pre-PR-9 bug)
/// kept serving stale verdicts across lint code changes.
std::uint64_t lint_cache_key(const FlowConfig& cfg, std::uint64_t model_hash);

/// Cache key of the proof tier: backend hash + SAT subsystem version +
/// the prove knobs that shape the verdict (induction_k).
std::uint64_t proof_cache_key(const FlowConfig& cfg, std::uint64_t model_hash);

/// Stable content fingerprint of a dataset (shape, labels, feature bits).
std::uint64_t dataset_fingerprint(const data::Dataset& ds);

/// 16-char lower-case hex form of a key (the on-disk entry directory name).
std::string key_hex(std::uint64_t key);

/// Which tier served an artifact.
enum class ArtifactTier {
    kNone,    ///< computed fresh (cache miss, or no store)
    kMemory,  ///< served from the in-process memory tier
    kDisk,    ///< rehydrated from the on-disk tier
};

const char* tier_name(ArtifactTier t);

/// The train stage's artifact set.
struct TrainedArtifact {
    std::shared_ptr<const model::TrainedModel> model;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
    /// How the model was trained (epochs run, stop reason, accuracy
    /// history).  Persisted with the model so disk-rehydrated runs report
    /// the same training record as the run that produced the entry;
    /// threads_used records the producing run only.
    train::FitReport fit;
};

/// The lint rung's artifact: the full static-analysis report of the
/// generated design.  Keyed by the same backend hash as the generate
/// stage - lint depends on exactly the inputs that shape the netlists
/// (model content, bus_width, strash) and on nothing else.
struct LintArtifact {
    lint::LintReport report;
};

/// The proof tier's artifact: the full SAT equivalence report (per-output
/// verdicts with self-checked traces, induction cases, solver stats),
/// persisted as JSON.  Keyed by proof_cache_key.
struct ProofArtifact {
    sat::ProveReport report;
};

/// The generate stage's expensive artifact set: the HCB AIG netlists and
/// their LUT-mapping summary.  Module emission and timing are cheap and
/// are re-derived per pipeline run (they also depend on the clock, which
/// is outside the backend key).
struct GeneratedArtifact {
    std::shared_ptr<const std::vector<rtl::HcbNetlist>> hcbs;
    std::size_t hcb_mapped_luts = 0;
    unsigned hcb_max_depth = 0;
    bool strash = true;  ///< how the AIGs were built (drives disk roundtrip)
};

/// Thread-safe, single-flight, two-tier artifact store.
class ArtifactStore {
public:
    /// Sink for non-fatal warnings (corrupt / unreadable disk entries).
    using WarnFn = std::function<void(const std::string&)>;

    /// Per-stage hit/miss/entry counters, split by tier.
    struct TierStats {
        std::size_t memory_hits = 0;  ///< served from a finished memory slot
        std::size_t disk_hits = 0;    ///< rehydrated from the disk tier
        std::size_t misses = 0;       ///< the compute function ran
        std::size_t memory_entries = 0;
        std::size_t disk_entries = 0;
        std::size_t hits() const { return memory_hits + disk_hits; }
    };
    struct Stats {
        TierStats train;
        TierStats generate;
        TierStats lint;
        TierStats proof;
    };

    /// One on-disk entry (for `matador cache ls` / stats).
    struct DiskEntry {
        std::string stage;    ///< "train" | "generate" | "lint" | "proof"
        std::string key_hex;  ///< 16-char entry directory name
        std::uintmax_t bytes = 0;
        std::size_t files = 0;
    };

    /// `cache_dir` empty => memory tier only (the PR-1 behaviour).
    explicit ArtifactStore(std::string cache_dir = "");

    const std::string& cache_dir() const { return dir_; }
    bool persistent() const { return !dir_.empty(); }

    /// Return the artifact for `key`, computing it with `fn` on first
    /// request.  Lookup order: memory tier, disk tier, compute.  Concurrent
    /// callers with the same key block until the first finishes; `fn` runs
    /// exactly once per key per process (and zero times when the disk tier
    /// already holds the entry).  `served` (when non-null) receives the
    /// tier that satisfied the call; `warn` receives non-fatal diagnostics
    /// about skipped disk entries.
    TrainedArtifact get_or_compute_trained(
        std::uint64_t key, const std::function<TrainedArtifact()>& fn,
        ArtifactTier* served = nullptr, const WarnFn& warn = {});

    GeneratedArtifact get_or_compute_generated(
        std::uint64_t key, const std::function<GeneratedArtifact()>& fn,
        ArtifactTier* served = nullptr, const WarnFn& warn = {});

    LintArtifact get_or_compute_lint(
        std::uint64_t key, const std::function<LintArtifact()>& fn,
        ArtifactTier* served = nullptr, const WarnFn& warn = {});

    ProofArtifact get_or_compute_proof(
        std::uint64_t key, const std::function<ProofArtifact()>& fn,
        ArtifactTier* served = nullptr, const WarnFn& warn = {});

    Stats stats() const;

    /// Drop the memory tier (disk entries survive).
    void clear_memory();

    /// Enumerate the disk tier (empty when not persistent).
    std::vector<DiskEntry> list_disk() const;

    /// Remove every disk entry; returns the number of bytes freed.
    std::uintmax_t clear_disk();

private:
    template <typename T>
    struct StageSlots {
        struct Slot {
            std::mutex mu;
            /// Atomic so stats() can observe it without taking mu (which an
            /// in-flight compute holds for its whole run).
            std::atomic<bool> computed{false};
            T artifact;
        };
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> slots;
        std::atomic<std::size_t> memory_hits{0};
        std::atomic<std::size_t> disk_hits{0};
        std::atomic<std::size_t> misses{0};
    };

    template <typename T>
    T get_or_compute(StageSlots<T>& stage, const char* stage_name,
                     std::uint64_t key, const std::function<T()>& fn,
                     ArtifactTier* served, const WarnFn& warn);

    std::optional<TrainedArtifact> load_disk(const char* stage_name,
                                             std::uint64_t key, const WarnFn& warn,
                                             TrainedArtifact*) const;
    std::optional<GeneratedArtifact> load_disk(const char* stage_name,
                                               std::uint64_t key, const WarnFn& warn,
                                               GeneratedArtifact*) const;
    std::optional<LintArtifact> load_disk(const char* stage_name,
                                          std::uint64_t key, const WarnFn& warn,
                                          LintArtifact*) const;
    std::optional<ProofArtifact> load_disk(const char* stage_name,
                                           std::uint64_t key, const WarnFn& warn,
                                           ProofArtifact*) const;
    void save_disk(const char* stage_name, std::uint64_t key,
                   const TrainedArtifact& a, const WarnFn& warn) const;
    void save_disk(const char* stage_name, std::uint64_t key,
                   const GeneratedArtifact& a, const WarnFn& warn) const;
    void save_disk(const char* stage_name, std::uint64_t key,
                   const LintArtifact& a, const WarnFn& warn) const;
    void save_disk(const char* stage_name, std::uint64_t key,
                   const ProofArtifact& a, const WarnFn& warn) const;

    std::size_t count_disk_entries(const char* stage_name) const;

    std::string dir_;
    StageSlots<TrainedArtifact> train_;
    StageSlots<GeneratedArtifact> generate_;
    StageSlots<LintArtifact> lint_;
    StageSlots<ProofArtifact> proof_;
};

}  // namespace matador::core
