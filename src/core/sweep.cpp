#include "core/sweep.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/config_io.hpp"
#include "util/stopwatch.hpp"

namespace matador::core {

SweepResult sweep(const data::Dataset& train, const data::Dataset& test,
                  const std::vector<FlowConfig>& grid,
                  const SweepOptions& options) {
    if (stage_index(options.range.from) > stage_index(options.range.to))
        throw std::invalid_argument("sweep: range.from is after range.to");

    SweepResult result;
    auto store = options.store
                     ? options.store
                     : std::make_shared<ArtifactStore>(
                           grid.empty() ? "" : grid.front().cache_dir);

    unsigned threads = options.threads;
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    threads = unsigned(std::min<std::size_t>(threads, std::max<std::size_t>(
                                                          1, grid.size())));
    result.threads_used = threads;
    result.points.resize(grid.size());

    util::Stopwatch watch;
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < grid.size();
             i = next.fetch_add(1)) {
            SweepPoint& p = result.points[i];
            p.index = i;
            p.cfg = grid[i];
            // An escaping exception in a worker thread would terminate the
            // process; fold it into the point's diagnostics instead.
            try {
                const Pipeline pipeline(grid[i], store);
                CompileContext ctx = pipeline.run(train, test, options.range);
                p.result = ctx.to_flow_result();
                p.ok = ctx.ok();
                p.stages = ctx.records;
                p.diagnostics = std::move(ctx.diagnostics);
            } catch (const std::exception& e) {
                p.ok = false;
                p.diagnostics.push_back({Diagnostic::Severity::kError,
                                         options.range.from,
                                         std::string("sweep point: ") + e.what()});
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (auto& th : pool) th.join();
    }

    result.wall_seconds = watch.seconds();
    result.store_stats = store->stats();
    return result;
}

std::vector<FlowConfig> expand_grid(
    const FlowConfig& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes) {
    std::vector<FlowConfig> grid{base};
    for (const auto& [key, values] : axes) {
        if (values.empty())
            throw std::invalid_argument("expand_grid: axis '" + key +
                                        "' has no values");
        std::vector<FlowConfig> expanded;
        expanded.reserve(grid.size() * values.size());
        for (const auto& cfg : grid) {
            for (const auto& value : values) {
                FlowConfig variant = cfg;
                if (!apply_flow_option(variant, key, value))
                    throw std::invalid_argument("expand_grid: unknown key '" +
                                                key + "'");
                expanded.push_back(std::move(variant));
            }
        }
        grid = std::move(expanded);
    }
    return grid;
}

SweepResult Pipeline::sweep(const data::Dataset& train, const data::Dataset& test,
                            const std::vector<FlowConfig>& grid,
                            const SweepOptions& options) {
    return core::sweep(train, test, grid, options);
}

}  // namespace matador::core
