#include "core/sweep.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/config_io.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace matador::core {

SweepPoint run_sweep_point(std::size_t index, const FlowConfig& cfg,
                           const data::Dataset& train, const data::Dataset& test,
                           const StageRange& range,
                           const std::shared_ptr<ArtifactStore>& store) {
    SweepPoint p;
    p.index = index;
    p.cfg = cfg;
    obs::SpanGuard span("point " + std::to_string(index), "sweep");
    // An escaping exception in a worker thread would terminate the
    // process; fold it into the point's diagnostics instead.
    try {
        const Pipeline pipeline(cfg, store);
        CompileContext ctx = pipeline.run(train, test, range);
        p.result = ctx.to_flow_result();
        p.ok = ctx.ok();
        p.stages = ctx.records;
        p.diagnostics = std::move(ctx.diagnostics);
    } catch (const std::exception& e) {
        p.ok = false;
        p.diagnostics.push_back({Diagnostic::Severity::kError, range.from,
                                 std::string("sweep point: ") + e.what()});
    }
    return p;
}

SweepResult sweep(const data::Dataset& train, const data::Dataset& test,
                  const std::vector<FlowConfig>& grid,
                  const SweepOptions& options) {
    if (stage_index(options.range.from) > stage_index(options.range.to))
        throw std::invalid_argument("sweep: range.from is after range.to");

    SweepResult result;
    auto store = options.store
                     ? options.store
                     : std::make_shared<ArtifactStore>(
                           grid.empty() ? "" : grid.front().cache_dir);

    unsigned threads = options.threads;
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    threads = unsigned(std::min<std::size_t>(threads, std::max<std::size_t>(
                                                          1, grid.size())));
    result.threads_used = threads;
    result.points.resize(grid.size());

    obs::Timer watch;
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < grid.size();
             i = next.fetch_add(1))
            result.points[i] =
                run_sweep_point(i, grid[i], train, test, options.range, store);
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (auto& th : pool) th.join();
    }

    result.wall_seconds = watch.seconds();
    result.store_stats = store->stats();
    return result;
}

std::vector<FlowConfig> expand_grid(
    const FlowConfig& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes) {
    std::vector<FlowConfig> grid{base};
    for (const auto& [key, values] : axes) {
        if (values.empty())
            throw std::invalid_argument("expand_grid: axis '" + key +
                                        "' has no values");
        std::vector<FlowConfig> expanded;
        expanded.reserve(grid.size() * values.size());
        for (const auto& cfg : grid) {
            for (const auto& value : values) {
                FlowConfig variant = cfg;
                if (!apply_flow_option(variant, key, value))
                    throw std::invalid_argument("expand_grid: unknown key '" +
                                                key + "'");
                expanded.push_back(std::move(variant));
            }
        }
        grid = std::move(expanded);
    }
    return grid;
}

SweepResult Pipeline::sweep(const data::Dataset& train, const data::Dataset& test,
                            const std::vector<FlowConfig>& grid,
                            const SweepOptions& options) {
    return core::sweep(train, test, grid, options);
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

namespace {

using util::Json;

Json num(double v) { return Json(v); }
Json num(std::size_t v) { return Json(double(v)); }
Json num(unsigned v) { return Json(double(v)); }

/// Read a double; the writer emits non-finite values as the strings
/// "nan" / "inf" / "-inf" (JSON has no token for them).
double get_f64(const Json& j, const std::string& key) {
    const Json& v = j.at(key);
    if (v.is_string()) {
        const std::string& s = v.as_string();
        if (s == "nan") return std::nan("");
        if (s == "inf") return std::numeric_limits<double>::infinity();
        if (s == "-inf") return -std::numeric_limits<double>::infinity();
        throw std::runtime_error("json: bad number string '" + s + "' for " + key);
    }
    return v.as_double();
}

std::size_t get_size(const Json& j, const std::string& key) {
    return std::size_t(j.at(key).as_double());
}

unsigned get_u32(const Json& j, const std::string& key) {
    return unsigned(j.at(key).as_double());
}

bool get_bool(const Json& j, const std::string& key) {
    return j.at(key).as_bool();
}

std::string get_str(const Json& j, const std::string& key) {
    return j.at(key).as_string();
}

void check_version(const Json& j, const char* format) {
    if (get_str(j, "format") != format)
        throw std::runtime_error(std::string("sweep json: not a ") + format +
                                 " document");
    const unsigned v = get_u32(j, "version");
    if (v == 0 || v > kSweepJsonVersion)
        throw std::runtime_error(
            std::string("sweep json: ") + format + " v" + std::to_string(v) +
            " is not supported (this build reads up to v" +
            std::to_string(kSweepJsonVersion) + ")");
}

StageStatus status_from_name(const std::string& name) {
    for (const StageStatus s :
         {StageStatus::kNotRun, StageStatus::kOk, StageStatus::kCached,
          StageStatus::kSkipped, StageStatus::kFailed})
        if (name == status_name(s)) return s;
    throw std::runtime_error("sweep json: unknown stage status '" + name + "'");
}

ArtifactTier tier_from_name(const std::string& name) {
    for (const ArtifactTier t :
         {ArtifactTier::kNone, ArtifactTier::kMemory, ArtifactTier::kDisk})
        if (name == tier_name(t)) return t;
    throw std::runtime_error("sweep json: unknown artifact tier '" + name + "'");
}

const char* severity_name(Diagnostic::Severity s) {
    switch (s) {
        case Diagnostic::Severity::kNote: return "note";
        case Diagnostic::Severity::kWarning: return "warning";
        case Diagnostic::Severity::kError: return "error";
    }
    return "?";
}

Diagnostic::Severity severity_from_name(const std::string& name) {
    for (const auto s : {Diagnostic::Severity::kNote,
                         Diagnostic::Severity::kWarning,
                         Diagnostic::Severity::kError})
        if (name == severity_name(s)) return s;
    throw std::runtime_error("sweep json: unknown severity '" + name + "'");
}

StageKind stage_from_name_checked(const std::string& name) {
    const auto k = stage_from_name(name);
    if (!k) throw std::runtime_error("sweep json: unknown stage '" + name + "'");
    return *k;
}

Json tier_stats_to_json(const ArtifactStore::TierStats& t) {
    Json j = Json::object();
    j.set("memory_hits", num(t.memory_hits));
    j.set("disk_hits", num(t.disk_hits));
    j.set("misses", num(t.misses));
    j.set("memory_entries", num(t.memory_entries));
    j.set("disk_entries", num(t.disk_entries));
    return j;
}

ArtifactStore::TierStats tier_stats_from_json(const Json& j) {
    ArtifactStore::TierStats t;
    t.memory_hits = get_size(j, "memory_hits");
    t.disk_hits = get_size(j, "disk_hits");
    t.misses = get_size(j, "misses");
    t.memory_entries = get_size(j, "memory_entries");
    t.disk_entries = get_size(j, "disk_entries");
    return t;
}

}  // namespace

std::string flow_config_to_text(const FlowConfig& cfg) {
    std::ostringstream out;
    save_flow_config(cfg, out);
    return out.str();
}

FlowConfig flow_config_from_text(const std::string& text) {
    std::istringstream in(text);
    return load_flow_config(in);
}

std::uint64_t grid_content_hash(const std::vector<FlowConfig>& grid) {
    Fnv1a h;
    h.u64(grid.size());
    for (const auto& cfg : grid) {
        const std::string text = flow_config_to_text(cfg);
        h.u64(text.size());
        h.bytes(text.data(), text.size());
    }
    return h.digest();
}

util::Json flow_result_to_json(const FlowResult& r) {
    Json j = Json::object();

    // Trained model, as its own versioned text format (empty models - e.g.
    // a point that failed before training - serialize and load fine too).
    {
        std::ostringstream model_text;
        r.trained_model.save(model_text);
        j.set("trained_model", model_text.str());
    }
    j.set("train_accuracy", num(r.train_accuracy));
    j.set("test_accuracy", num(r.test_accuracy));
    j.set("train_epochs_run", num(r.train_epochs_run));
    j.set("train_stop_reason", Json(r.train_stop_reason));
    j.set("train_best_epoch", num(r.train_best_epoch));
    {
        Json h = Json::array();
        for (const auto& m : r.accuracy_history) {
            Json e = Json::object();
            e.set("epoch", num(m.epoch));
            e.set("train_accuracy", num(m.train_accuracy));
            e.set("eval_accuracy", num(m.eval_accuracy));
            h.push_back(std::move(e));
        }
        j.set("accuracy_history", std::move(h));
    }

    {
        Json a = Json::object();
        a.set("input_bits", num(r.arch.input_bits));
        a.set("num_classes", num(r.arch.num_classes));
        a.set("clauses_per_class", num(r.arch.clauses_per_class));
        a.set("plan_input_bits", num(r.arch.plan.input_bits));
        a.set("plan_bus_width", num(r.arch.plan.bus_width));
        a.set("bus_width", num(r.arch.options.bus_width));
        a.set("clock_mhz", num(r.arch.options.clock_mhz));
        a.set("argmax_levels_per_stage", num(r.arch.options.argmax_levels_per_stage));
        a.set("adder_levels_per_stage", num(r.arch.options.adder_levels_per_stage));
        a.set("class_sum_levels", num(r.arch.class_sum_levels));
        a.set("class_sum_stages", num(r.arch.class_sum_stages));
        a.set("argmax_levels", num(r.arch.argmax_levels));
        a.set("argmax_stages", num(r.arch.argmax_stages));
        a.set("sum_width", num(r.arch.sum_width));
        j.set("arch", std::move(a));
    }
    {
        Json s = Json::object();
        s.set("total_clauses", num(r.sparsity.total_clauses));
        s.set("empty_clauses", num(r.sparsity.empty_clauses));
        s.set("total_includes", num(r.sparsity.total_includes));
        s.set("literal_slots", num(r.sparsity.literal_slots));
        s.set("include_density", num(r.sparsity.include_density));
        s.set("min_includes", num(r.sparsity.min_includes));
        s.set("max_includes", num(r.sparsity.max_includes));
        s.set("mean_includes", num(r.sparsity.mean_includes));
        j.set("sparsity", std::move(s));
    }
    {
        Json s = Json::object();
        Json per_packet = Json::array();
        for (const auto& p : r.sharing.per_packet) {
            Json e = Json::object();
            e.set("packet", num(p.packet));
            e.set("total_partials", num(p.total_partials));
            e.set("unique_partials", num(p.unique_partials));
            e.set("trivial_partials", num(p.trivial_partials));
            e.set("intra_class_duplicates", num(p.intra_class_duplicates));
            e.set("inter_class_duplicates", num(p.inter_class_duplicates));
            per_packet.push_back(std::move(e));
        }
        s.set("per_packet", std::move(per_packet));
        s.set("duplicate_full_clauses", num(r.sharing.duplicate_full_clauses));
        s.set("mean_sharing_ratio", num(r.sharing.mean_sharing_ratio));
        j.set("sharing", std::move(s));
    }

    j.set("hcb_mapped_luts", num(r.hcb_mapped_luts));
    j.set("hcb_max_depth", num(r.hcb_max_depth));
    j.set("max_feature_fanout", num(r.max_feature_fanout));

    {
        Json t = Json::object();
        t.set("critical_path_ns", num(r.timing.critical_path_ns));
        t.set("fmax_estimate_mhz", num(r.timing.fmax_estimate_mhz));
        t.set("recommended_mhz", num(r.timing.recommended_mhz));
        j.set("timing", std::move(t));
    }
    {
        Json s = Json::object();
        s.set("luts", num(r.resources.luts));
        s.set("lut_logic", num(r.resources.lut_logic));
        s.set("lut_mem", num(r.resources.lut_mem));
        s.set("registers", num(r.resources.registers));
        s.set("f7_mux", num(r.resources.f7_mux));
        s.set("f8_mux", num(r.resources.f8_mux));
        s.set("slices", num(r.resources.slices));
        s.set("bram36", num(r.resources.bram36));
        j.set("resources", std::move(s));
    }
    {
        Json p = Json::object();
        p.set("total_w", num(r.power.total_w));
        p.set("dynamic_w", num(r.power.dynamic_w));
        p.set("static_w", num(r.power.static_w));
        p.set("fabric_dynamic_w", num(r.power.fabric_dynamic_w));
        p.set("ps_dynamic_w", num(r.power.ps_dynamic_w));
        j.set("power", std::move(p));
    }
    {
        Json v = Json::object();
        v.set("expressions_match_model", Json(r.verification.expressions_match_model));
        v.set("hcb_aigs_match_expressions",
              Json(r.verification.hcb_aigs_match_expressions));
        v.set("rtl_matches_aigs", Json(r.verification.rtl_matches_aigs));
        v.set("hcbs_checked", num(r.verification.hcbs_checked));
        v.set("vectors_checked", num(r.verification.vectors_checked));
        v.set("first_failure", Json(r.verification.first_failure));
        j.set("verification", std::move(v));
    }

    j.set("system_verified", Json(r.system_verified));
    j.set("measured_latency_cycles", num(r.measured_latency_cycles));
    j.set("measured_ii", num(r.measured_ii));
    j.set("latency_us", num(r.latency_us));
    j.set("throughput_inf_per_s", num(r.throughput_inf_per_s));

    Json files = Json::array();
    for (const auto& f : r.rtl_files) files.push_back(Json(f));
    j.set("rtl_files", std::move(files));
    return j;
}

FlowResult flow_result_from_json(const util::Json& j) {
    FlowResult r;
    {
        std::istringstream model_text(get_str(j, "trained_model"));
        r.trained_model = model::TrainedModel::load(model_text);
    }
    r.train_accuracy = get_f64(j, "train_accuracy");
    r.test_accuracy = get_f64(j, "test_accuracy");
    // Training-record fields arrived with schema v2; default them when
    // reading a v1 document.
    if (j.contains("train_epochs_run")) {
        r.train_epochs_run = get_size(j, "train_epochs_run");
        r.train_stop_reason = get_str(j, "train_stop_reason");
        r.train_best_epoch = get_size(j, "train_best_epoch");
        for (const Json& e : j.at("accuracy_history").as_array()) {
            train::EpochMetrics m;
            m.epoch = get_size(e, "epoch");
            m.train_accuracy = get_f64(e, "train_accuracy");
            m.eval_accuracy = get_f64(e, "eval_accuracy");
            r.accuracy_history.push_back(m);
        }
    }

    {
        const Json& a = j.at("arch");
        r.arch.input_bits = get_size(a, "input_bits");
        r.arch.num_classes = get_size(a, "num_classes");
        r.arch.clauses_per_class = get_size(a, "clauses_per_class");
        // PacketPlan refuses zero input bits; a point that never reached the
        // architect stage keeps the default-constructed (empty) plan.
        const auto plan_bits = get_size(a, "plan_input_bits");
        if (plan_bits > 0)
            r.arch.plan = model::PacketPlan(plan_bits, get_size(a, "plan_bus_width"));
        r.arch.options.bus_width = get_size(a, "bus_width");
        r.arch.options.clock_mhz = get_f64(a, "clock_mhz");
        r.arch.options.argmax_levels_per_stage = get_u32(a, "argmax_levels_per_stage");
        r.arch.options.adder_levels_per_stage = get_u32(a, "adder_levels_per_stage");
        r.arch.class_sum_levels = get_u32(a, "class_sum_levels");
        r.arch.class_sum_stages = get_u32(a, "class_sum_stages");
        r.arch.argmax_levels = get_u32(a, "argmax_levels");
        r.arch.argmax_stages = get_u32(a, "argmax_stages");
        r.arch.sum_width = get_u32(a, "sum_width");
    }
    {
        const Json& s = j.at("sparsity");
        r.sparsity.total_clauses = get_size(s, "total_clauses");
        r.sparsity.empty_clauses = get_size(s, "empty_clauses");
        r.sparsity.total_includes = get_size(s, "total_includes");
        r.sparsity.literal_slots = get_size(s, "literal_slots");
        r.sparsity.include_density = get_f64(s, "include_density");
        r.sparsity.min_includes = get_size(s, "min_includes");
        r.sparsity.max_includes = get_size(s, "max_includes");
        r.sparsity.mean_includes = get_f64(s, "mean_includes");
    }
    {
        const Json& s = j.at("sharing");
        for (const Json& e : s.at("per_packet").as_array()) {
            model::PacketSharing p;
            p.packet = get_size(e, "packet");
            p.total_partials = get_size(e, "total_partials");
            p.unique_partials = get_size(e, "unique_partials");
            p.trivial_partials = get_size(e, "trivial_partials");
            p.intra_class_duplicates = get_size(e, "intra_class_duplicates");
            p.inter_class_duplicates = get_size(e, "inter_class_duplicates");
            r.sharing.per_packet.push_back(p);
        }
        r.sharing.duplicate_full_clauses = get_size(s, "duplicate_full_clauses");
        r.sharing.mean_sharing_ratio = get_f64(s, "mean_sharing_ratio");
    }

    r.hcb_mapped_luts = get_size(j, "hcb_mapped_luts");
    r.hcb_max_depth = get_u32(j, "hcb_max_depth");
    r.max_feature_fanout = get_size(j, "max_feature_fanout");

    {
        const Json& t = j.at("timing");
        r.timing.critical_path_ns = get_f64(t, "critical_path_ns");
        r.timing.fmax_estimate_mhz = get_f64(t, "fmax_estimate_mhz");
        r.timing.recommended_mhz = get_f64(t, "recommended_mhz");
    }
    {
        const Json& s = j.at("resources");
        r.resources.luts = get_size(s, "luts");
        r.resources.lut_logic = get_size(s, "lut_logic");
        r.resources.lut_mem = get_size(s, "lut_mem");
        r.resources.registers = get_size(s, "registers");
        r.resources.f7_mux = get_size(s, "f7_mux");
        r.resources.f8_mux = get_size(s, "f8_mux");
        r.resources.slices = get_size(s, "slices");
        r.resources.bram36 = get_f64(s, "bram36");
    }
    {
        const Json& p = j.at("power");
        r.power.total_w = get_f64(p, "total_w");
        r.power.dynamic_w = get_f64(p, "dynamic_w");
        r.power.static_w = get_f64(p, "static_w");
        r.power.fabric_dynamic_w = get_f64(p, "fabric_dynamic_w");
        r.power.ps_dynamic_w = get_f64(p, "ps_dynamic_w");
    }
    {
        const Json& v = j.at("verification");
        r.verification.expressions_match_model = get_bool(v, "expressions_match_model");
        r.verification.hcb_aigs_match_expressions =
            get_bool(v, "hcb_aigs_match_expressions");
        r.verification.rtl_matches_aigs = get_bool(v, "rtl_matches_aigs");
        r.verification.hcbs_checked = get_size(v, "hcbs_checked");
        r.verification.vectors_checked = get_size(v, "vectors_checked");
        r.verification.first_failure = get_str(v, "first_failure");
    }

    r.system_verified = get_bool(j, "system_verified");
    r.measured_latency_cycles = get_size(j, "measured_latency_cycles");
    r.measured_ii = get_f64(j, "measured_ii");
    r.latency_us = get_f64(j, "latency_us");
    r.throughput_inf_per_s = get_f64(j, "throughput_inf_per_s");

    for (const Json& f : j.at("rtl_files").as_array())
        r.rtl_files.push_back(f.as_string());
    return r;
}

util::Json sweep_point_to_json(const SweepPoint& p) {
    Json j = Json::object();
    j.set("format", "matador-sweep-point");
    j.set("version", num(kSweepJsonVersion));
    j.set("index", num(p.index));
    j.set("config", flow_config_to_text(p.cfg));
    j.set("ok", Json(p.ok));
    j.set("result", flow_result_to_json(p.result));

    Json stages = Json::array();
    for (const StageRecord& rec : p.stages) {
        Json s = Json::object();
        s.set("stage", stage_name(rec.kind));
        s.set("status", status_name(rec.status));
        s.set("seconds", num(rec.seconds));
        s.set("tier", tier_name(rec.tier));
        s.set("detail", Json(rec.detail));
        stages.push_back(std::move(s));
    }
    j.set("stages", std::move(stages));

    Json diags = Json::array();
    for (const Diagnostic& d : p.diagnostics) {
        Json e = Json::object();
        e.set("severity", severity_name(d.severity));
        e.set("stage", stage_name(d.stage));
        e.set("message", Json(d.message));
        diags.push_back(std::move(e));
    }
    j.set("diagnostics", std::move(diags));
    return j;
}

SweepPoint sweep_point_from_json(const util::Json& j) {
    check_version(j, "matador-sweep-point");
    SweepPoint p;
    p.index = get_size(j, "index");
    p.cfg = flow_config_from_text(get_str(j, "config"));
    p.ok = get_bool(j, "ok");
    p.result = flow_result_from_json(j.at("result"));

    const auto& stages = j.at("stages").as_array();
    if (stages.size() != kNumStages)
        throw std::runtime_error("sweep json: expected " +
                                 std::to_string(kNumStages) + " stage records");
    for (const Json& s : stages) {
        StageRecord rec;
        rec.kind = stage_from_name_checked(get_str(s, "stage"));
        rec.status = status_from_name(get_str(s, "status"));
        rec.seconds = get_f64(s, "seconds");
        rec.tier = tier_from_name(get_str(s, "tier"));
        if (s.contains("detail")) rec.detail = get_str(s, "detail");
        p.stages[stage_index(rec.kind)] = rec;
    }

    for (const Json& e : j.at("diagnostics").as_array()) {
        Diagnostic d;
        d.severity = severity_from_name(get_str(e, "severity"));
        d.stage = stage_from_name_checked(get_str(e, "stage"));
        d.message = get_str(e, "message");
        p.diagnostics.push_back(std::move(d));
    }
    return p;
}

util::Json store_stats_to_json(const ArtifactStore::Stats& s) {
    Json j = Json::object();
    j.set("train", tier_stats_to_json(s.train));
    j.set("generate", tier_stats_to_json(s.generate));
    j.set("lint", tier_stats_to_json(s.lint));
    return j;
}

ArtifactStore::Stats store_stats_from_json(const util::Json& j) {
    ArtifactStore::Stats s;
    s.train = tier_stats_from_json(j.at("train"));
    s.generate = tier_stats_from_json(j.at("generate"));
    // Tolerant read: pre-lint documents (older shards) lack the key.
    if (j.contains("lint")) s.lint = tier_stats_from_json(j.at("lint"));
    return s;
}

util::Json sweep_result_to_json(const SweepResult& r) {
    Json j = Json::object();
    j.set("format", "matador-sweep-result");
    j.set("version", num(kSweepJsonVersion));
    Json points = Json::array();
    for (const SweepPoint& p : r.points) points.push_back(sweep_point_to_json(p));
    j.set("points", std::move(points));
    j.set("store_stats", store_stats_to_json(r.store_stats));
    j.set("threads_used", num(r.threads_used));
    j.set("wall_seconds", num(r.wall_seconds));
    return j;
}

SweepResult sweep_result_from_json(const util::Json& j) {
    check_version(j, "matador-sweep-result");
    SweepResult r;
    for (const Json& p : j.at("points").as_array())
        r.points.push_back(sweep_point_from_json(p));
    r.store_stats = store_stats_from_json(j.at("store_stats"));
    r.threads_used = get_u32(j, "threads_used");
    r.wall_seconds = get_f64(j, "wall_seconds");
    return r;
}

}  // namespace matador::core
