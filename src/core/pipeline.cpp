#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "infer/engine.hpp"
#include "logic/lut_mapper.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/accelerator_sim.hpp"
#include "tm/tsetlin_machine.hpp"
#include "train/parallel_trainer.hpp"
#include "util/rng.hpp"

namespace matador::core {

// ---------------------------------------------------------------------------
// Stage identity
// ---------------------------------------------------------------------------

std::array<StageKind, kNumStages> stage_order() {
    return {StageKind::kTrain,    StageKind::kAnalyze, StageKind::kArchitect,
            StageKind::kGenerate, StageKind::kVerify,  StageKind::kReport};
}

const char* stage_name(StageKind k) {
    switch (k) {
        case StageKind::kTrain: return "train";
        case StageKind::kAnalyze: return "analyze";
        case StageKind::kArchitect: return "architect";
        case StageKind::kGenerate: return "generate";
        case StageKind::kVerify: return "verify";
        case StageKind::kReport: return "report";
    }
    return "?";
}

std::optional<StageKind> stage_from_name(const std::string& name) {
    for (auto k : stage_order())
        if (name == stage_name(k)) return k;
    return std::nullopt;
}

const char* status_name(StageStatus s) {
    switch (s) {
        case StageStatus::kNotRun: return "not-run";
        case StageStatus::kOk: return "ok";
        case StageStatus::kCached: return "cached";
        case StageStatus::kSkipped: return "skipped";
        case StageStatus::kFailed: return "FAILED";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// CompileContext
// ---------------------------------------------------------------------------

CompileContext::CompileContext(FlowConfig config) : cfg(std::move(config)) {
    for (auto k : stage_order()) records[stage_index(k)].kind = k;
}

void CompileContext::note(StageKind stage, std::string message) {
    diagnostics.push_back({Diagnostic::Severity::kNote, stage, std::move(message)});
}

void CompileContext::warn(StageKind stage, std::string message) {
    diagnostics.push_back(
        {Diagnostic::Severity::kWarning, stage, std::move(message)});
}

void CompileContext::error(StageKind stage, std::string message) {
    diagnostics.push_back({Diagnostic::Severity::kError, stage, std::move(message)});
}

bool CompileContext::has_errors() const {
    return std::any_of(diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == Diagnostic::Severity::kError;
    });
}

bool CompileContext::ok() const {
    if (has_errors()) return false;
    return std::none_of(records.begin(), records.end(), [](const auto& r) {
        return r.status == StageStatus::kFailed;
    });
}

double CompileContext::total_seconds() const {
    double s = 0.0;
    for (const auto& r : records) s += r.seconds;
    return s;
}

FlowResult CompileContext::to_flow_result() const {
    FlowResult r;
    if (trained) r.trained_model = *trained;
    r.train_accuracy = train_accuracy;
    r.test_accuracy = test_accuracy;
    if (train_report) {
        r.train_epochs_run = train_report->epochs_run;
        r.train_stop_reason = train::stop_reason_name(train_report->stop_reason);
        r.train_best_epoch = train_report->best_epoch;
        r.accuracy_history = train_report->history;
    }
    if (arch) r.arch = *arch;
    if (sparsity) r.sparsity = *sparsity;
    if (sharing) r.sharing = *sharing;
    r.max_feature_fanout = max_feature_fanout.value_or(0);
    r.hcb_mapped_luts = hcb_mapped_luts;
    r.hcb_max_depth = hcb_max_depth;
    if (timing) r.timing = *timing;
    if (resources) r.resources = *resources;
    if (power) r.power = *power;
    if (verification) r.verification = *verification;
    r.system_verified = system_verified;
    r.measured_latency_cycles = measured_latency_cycles;
    r.measured_ii = measured_ii;
    if (arch) {
        r.latency_us = arch->latency_us();
        r.throughput_inf_per_s = arch->throughput_inf_per_s();
    }
    r.rtl_files = rtl_files;
    return r;
}

// ---------------------------------------------------------------------------
// Stage implementations
// ---------------------------------------------------------------------------

namespace {

/// Max fanout of a packet-bit net: the number of live clauses that include
/// the most popular feature (either polarity).  Drives the timing model.
std::size_t compute_max_feature_fanout(const model::TrainedModel& m) {
    std::vector<std::size_t> fanout(m.num_features(), 0);
    for (std::size_t c = 0; c < m.num_classes(); ++c) {
        for (std::size_t j = 0; j < m.clauses_per_class(); ++j) {
            const auto& cl = m.clause(c, j);
            for (auto f : cl.include_pos.set_bits()) fanout[f]++;
            for (auto f : cl.include_neg.set_bits()) fanout[f]++;
        }
    }
    std::size_t mx = 0;
    for (auto v : fanout) mx = std::max(mx, v);
    return mx;
}

double evaluate_model(const model::TrainedModel& m, const data::Dataset& ds) {
    if (ds.size() == 0) return 0.0;
    // 64 examples per pass; predictions (and the accuracy double) are
    // bit-identical to the scalar m.predict loop this replaces.
    return infer::BatchEngine(m).accuracy(ds);
}

/// Per-stage cache hit/miss counters (only meaningful when a store was in
/// play; hits are further split by the tier that served them).
void count_cache_lookup(StageKind kind, ArtifactTier tier) {
    auto& registry = obs::MetricsRegistry::global();
    if (tier == ArtifactTier::kNone)
        registry.counter("pipeline_cache_misses", {{"stage", stage_name(kind)}})
            .add();
    else
        registry
            .counter("pipeline_cache_hits",
                     {{"stage", stage_name(kind)}, {"tier", tier_name(tier)}})
            .add();
}

class TrainStage final : public Stage {
public:
    StageKind kind() const override { return StageKind::kTrain; }

    StageStatus run(CompileContext& ctx) const override {
        if (ctx.trained) {
            // Yellow import flow: the model arrived from outside; only the
            // accuracy column needs computing.
            ctx.model_imported = true;
            if (ctx.test_set)
                ctx.test_accuracy = evaluate_model(*ctx.trained, *ctx.test_set);
            ctx.note(kind(), "model imported; training skipped (yellow flow)");
            return StageStatus::kSkipped;
        }
        if (!ctx.train_set) {
            ctx.error(kind(),
                      "train stage needs a training dataset or an imported model");
            return StageStatus::kFailed;
        }

        const auto train_fn = [&]() -> TrainedArtifact {
            tm::TsetlinMachine machine(ctx.cfg.tm, ctx.train_set->num_features,
                                       ctx.train_set->num_classes);
            train::FitOptions opts;
            opts.epochs = ctx.cfg.epochs;
            opts.threads = unsigned(ctx.cfg.train_threads);
            opts.eval_every = ctx.cfg.eval_every;
            opts.patience = ctx.cfg.patience;
            train::ParallelTrainer trainer(opts);
            // A present-but-empty test set must keep the historical
            // "no test accuracy" 0.0 (the trainer itself would fall back
            // to reporting train accuracy in the eval column).
            const data::Dataset* eval_set =
                ctx.test_set && ctx.test_set->size() > 0 ? ctx.test_set : nullptr;
            TrainedArtifact a;
            a.fit = trainer.fit(machine, *ctx.train_set, eval_set);
            a.model = std::make_shared<model::TrainedModel>(machine.export_model());
            a.train_accuracy = a.fit.train_accuracy;
            a.test_accuracy = eval_set ? a.fit.eval_accuracy : 0.0;
            return a;
        };

        ArtifactTier tier = ArtifactTier::kNone;
        TrainedArtifact a;
        if (ctx.store) {
            Fnv1a key;
            key.u64(frontend_config_hash(ctx.cfg));
            key.u64(dataset_fingerprint(*ctx.train_set));
            key.u64(ctx.test_set ? dataset_fingerprint(*ctx.test_set) : 0);
            a = ctx.store->get_or_compute_trained(
                key.digest(), train_fn, &tier,
                [&](const std::string& msg) { ctx.warn(kind(), msg); });
        } else {
            a = train_fn();
        }
        ctx.trained = a.model;
        ctx.train_accuracy = a.train_accuracy;
        ctx.test_accuracy = a.test_accuracy;
        ctx.train_report = a.fit;
        ctx.record(kind()).tier = tier;
        if (ctx.store) count_cache_lookup(kind(), tier);
        {
            char detail[96];
            std::snprintf(detail, sizeof detail, "epochs=%zu/%zu stop=%s best=%zu",
                          a.fit.epochs_run, ctx.cfg.epochs,
                          train::stop_reason_name(a.fit.stop_reason),
                          a.fit.best_epoch);
            ctx.record(kind()).detail = detail;
        }
        if (tier != ArtifactTier::kNone)
            ctx.note(kind(), std::string("trained model served from artifact "
                                         "store (") +
                                 tier_name(tier) + " tier)");
        return tier != ArtifactTier::kNone ? StageStatus::kCached
                                           : StageStatus::kOk;
    }
};

class AnalyzeStage final : public Stage {
public:
    StageKind kind() const override { return StageKind::kAnalyze; }

    StageStatus run(CompileContext& ctx) const override {
        if (!ctx.trained) {
            ctx.warn(kind(), "no trained model; analyze skipped");
            return StageStatus::kSkipped;
        }
        const auto& m = *ctx.trained;
        ctx.sparsity = model::analyze_sparsity(m);
        ctx.sharing = model::analyze_sharing(
            m, model::PacketPlan(m.num_features(), ctx.cfg.arch.bus_width));
        ctx.max_feature_fanout = compute_max_feature_fanout(m);
        return StageStatus::kOk;
    }
};

class ArchitectStage final : public Stage {
public:
    StageKind kind() const override { return StageKind::kArchitect; }

    StageStatus run(CompileContext& ctx) const override {
        if (!ctx.trained) {
            ctx.warn(kind(), "no trained model; architect skipped");
            return StageStatus::kSkipped;
        }
        // Initial derivation at the configured clock; the generate stage
        // refines the clock from the mapped LUT depth when auto_frequency
        // is on (it needs the HCB netlists to estimate timing).
        ctx.arch = model::derive_architecture(*ctx.trained, ctx.cfg.arch);
        return StageStatus::kOk;
    }
};

class GenerateStage final : public Stage {
public:
    StageKind kind() const override { return StageKind::kGenerate; }

    StageStatus run(CompileContext& ctx) const override {
        if (!ctx.trained || !ctx.arch) {
            ctx.warn(kind(), "missing model/architecture; generate skipped");
            return StageStatus::kSkipped;
        }
        const auto& m = *ctx.trained;

        // The expensive, backend-key-invariant part: HCB AIG construction
        // and LUT mapping.  Keyed by model content + bus_width + strash, so
        // clock/device-only variants reuse it.
        const auto generate_fn = [&]() -> GeneratedArtifact {
            GeneratedArtifact g;
            g.strash = ctx.cfg.strash;
            auto hcbs = rtl::build_hcbs(m, ctx.arch->plan, ctx.cfg.strash);
            for (const auto& hcb : hcbs) {
                if (ctx.cfg.strash) {
                    const auto mapped = logic::map_to_luts(hcb.aig);
                    g.hcb_mapped_luts += mapped.lut_count;
                    g.hcb_max_depth = std::max(g.hcb_max_depth, mapped.depth);
                } else {
                    // DON'T_TOUCH semantics (Fig. 8): synthesis may neither
                    // share nor repack the clause gates, so every AND
                    // instantiates as its own LUT and depth follows the raw
                    // gate network.
                    g.hcb_mapped_luts += hcb.aig.count_reachable_ands();
                    g.hcb_max_depth =
                        std::max(g.hcb_max_depth, hcb.aig.depth());
                }
            }
            g.hcbs = std::make_shared<std::vector<rtl::HcbNetlist>>(
                std::move(hcbs));
            return g;
        };

        ArtifactTier tier = ArtifactTier::kNone;
        GeneratedArtifact artifact;
        if (ctx.store) {
            const auto key = backend_config_hash(ctx.cfg, m.content_hash());
            artifact = ctx.store->get_or_compute_generated(
                key, generate_fn, &tier,
                [&](const std::string& msg) { ctx.warn(kind(), msg); });
        } else {
            artifact = generate_fn();
        }
        ctx.record(kind()).tier = tier;
        if (ctx.store) count_cache_lookup(kind(), tier);
        if (tier != ArtifactTier::kNone)
            ctx.note(kind(), std::string("HCB netlists and LUT mapping served "
                                         "from artifact store (") +
                                 tier_name(tier) + " tier)");

        // Cheap re-derivation per run: module emission (deterministic from
        // the netlists, so disk-tier RTL is byte-identical to fresh RTL).
        ctx.design = std::make_shared<rtl::RtlDesign>(rtl::assemble_rtl(
            m, *ctx.arch, *artifact.hcbs, ctx.cfg.strash));
        ctx.hcb_mapped_luts = artifact.hcb_mapped_luts;
        ctx.hcb_max_depth = artifact.hcb_max_depth;

        // Timing-driven frequency selection (50-65 MHz band).
        if (!ctx.max_feature_fanout)
            ctx.max_feature_fanout = compute_max_feature_fanout(m);
        ctx.timing = cost::estimate_timing(ctx.hcb_max_depth,
                                           *ctx.max_feature_fanout);
        if (ctx.cfg.auto_frequency) {
            model::ArchOptions opts = ctx.cfg.arch;
            opts.clock_mhz = ctx.timing->recommended_mhz;
            ctx.arch = model::derive_architecture(m, opts);
            ctx.design->arch = *ctx.arch;
        }

        if (!ctx.cfg.rtl_output_dir.empty()) {
            ctx.rtl_files = rtl::write_design(*ctx.design, ctx.cfg.rtl_output_dir);
            obs::MetricsRegistry::global()
                .counter("pipeline_artifacts_written", {{"kind", "rtl"}})
                .add(ctx.rtl_files.size());
            ctx.note(kind(), "wrote " + std::to_string(ctx.rtl_files.size()) +
                                 " RTL files to " + ctx.cfg.rtl_output_dir);
        }
        return tier != ArtifactTier::kNone ? StageStatus::kCached
                                           : StageStatus::kOk;
    }
};

class VerifyStage final : public Stage {
public:
    StageKind kind() const override { return StageKind::kVerify; }

    StageStatus run(CompileContext& ctx) const override {
        if (!ctx.trained || !ctx.arch || !ctx.design) {
            ctx.warn(kind(), "missing design artifacts; verify skipped");
            return StageStatus::kSkipped;
        }
        const auto& m = *ctx.trained;

        // Level 0 of the ladder: static analysis over the generated
        // netlists.  Pure structure - no vectors - so it runs (and fails)
        // before any simulation effort is spent.  Cached under the same
        // backend key as the netlists it analyzes.
        const auto lint_fn = [&]() -> LintArtifact {
            LintArtifact a;
            a.report = lint::lint_design(*ctx.design, &m);
            return a;
        };
        ArtifactTier lint_tier = ArtifactTier::kNone;
        LintArtifact lint_artifact;
        if (ctx.store) {
            // lint_cache_key, not the raw backend hash: the key folds in the
            // lint subsystem version, so checker changes invalidate cached
            // verdicts instead of silently resurfacing stale ones.
            const auto key = lint_cache_key(ctx.cfg, m.content_hash());
            lint_artifact = ctx.store->get_or_compute_lint(
                key, lint_fn, &lint_tier,
                [&](const std::string& msg) { ctx.warn(kind(), msg); });
        } else {
            lint_artifact = lint_fn();
        }
        ctx.lint_report = std::move(lint_artifact.report);
        ctx.record(kind()).detail = "lint: " + ctx.lint_report->summary();
        if (ctx.store) count_cache_lookup(kind(), lint_tier);
        {
            const auto errors = ctx.lint_report->errors();
            const auto warnings = ctx.lint_report->warnings();
            auto& registry = obs::MetricsRegistry::global();
            const auto count = [&](const char* sev, std::size_t n) {
                if (n) registry
                           .counter("pipeline_lint_findings",
                                    {{"severity", sev}})
                           .add(n);
            };
            count("error", errors);
            count("warning", warnings);
            count("info",
                  ctx.lint_report->findings.size() - errors - warnings);
        }
        if (lint_tier != ArtifactTier::kNone)
            ctx.note(kind(), std::string("lint report served from artifact "
                                         "store (") +
                                 tier_name(lint_tier) + " tier)");
        if (ctx.lint_report->errors() > 0) {
            for (const auto& f : ctx.lint_report->findings)
                if (f.severity == lint::Severity::kError)
                    ctx.error(kind(),
                              "lint [" + f.check + "] " + f.where +
                                  (f.object.empty() ? "" : " / " + f.object) +
                                  ": " + f.message);
            return StageStatus::kFailed;
        }
        if (ctx.lint_report->warnings() > 0)
            ctx.warn(kind(),
                     "lint: " + std::to_string(ctx.lint_report->warnings()) +
                         " warning(s); run `matador lint` for details");

        // Equivalence ladder (the auto-debug flow).
        bool ladder_skipped = false;
        rtl::VerificationReport rep;
        if (!ctx.cfg.skip_rtl_verification) {
            rep = rtl::verify_design(*ctx.design, m, ctx.cfg.verify_vectors,
                                     /*seed=*/1234);
        } else {
            rep.expressions_match_model = true;
            rep.hcb_aigs_match_expressions = true;
            rep.rtl_matches_aigs = true;
            ladder_skipped = true;
        }
        ctx.verification = rep;

        // System-level streaming check (cycle-accurate).
        std::vector<util::BitVector> inputs;
        util::Xoshiro256ss rng(4321);
        const std::size_t n = std::max<std::size_t>(2, ctx.cfg.sim_datapoints);
        for (std::size_t i = 0; i < n; ++i) {
            if (ctx.test_set && i < ctx.test_set->size()) {
                inputs.push_back(ctx.test_set->examples[i]);
            } else {
                util::BitVector x(m.num_features());
                for (std::size_t w = 0; w < x.word_count(); ++w)
                    x.set_word(w, rng());
                inputs.push_back(std::move(x));
            }
        }
        sim::AcceleratorSim simulator(m, *ctx.arch);
        const sim::SimResult sr = simulator.run(inputs);

        // Golden predictions come from the batched engine (bit-identical
        // to m.predict, 64 streamed datapoints per pass).
        const auto golden =
            infer::BatchEngine(m).predict(inputs.data(), inputs.size());
        bool ok = sr.predictions.size() == inputs.size();
        for (std::size_t i = 0; ok && i < inputs.size(); ++i)
            ok = sr.predictions[i] == golden[i];
        ok = ok && sr.first_latency_cycles == ctx.arch->latency_cycles();
        ok = ok && std::llround(sr.mean_initiation_interval) ==
                       (long long)(ctx.arch->initiation_interval());
        ctx.system_verified = ok;
        ctx.measured_latency_cycles = sr.first_latency_cycles;
        ctx.measured_ii = sr.mean_initiation_interval;

        // Levels 3-4 of the ladder (opt-in): SAT-proved scalar-vs-netlist
        // equivalence per output slice plus k-induction over the chain.
        // Cached under the proof key (backend hash + SAT subsystem version
        // + induction depth) and fanned per output over the worker pool.
        bool proof_ok = true;
        if (ctx.cfg.verify_sat) {
            const auto prove_fn = [&]() -> ProofArtifact {
                ProofArtifact a;
                sat::ProveOptions popt;
                popt.induction_k = ctx.cfg.induction_k;
                popt.threads = unsigned(ctx.cfg.train_threads);
                a.report = sat::prove_design(ctx.design->hcbs, m, popt);
                return a;
            };
            ArtifactTier proof_tier = ArtifactTier::kNone;
            ProofArtifact proof_artifact;
            if (ctx.store) {
                const auto key = proof_cache_key(ctx.cfg, m.content_hash());
                proof_artifact = ctx.store->get_or_compute_proof(
                    key, prove_fn, &proof_tier,
                    [&](const std::string& msg) { ctx.warn(kind(), msg); });
            } else {
                proof_artifact = prove_fn();
            }
            ctx.proof = std::move(proof_artifact.report);
            if (ctx.store) count_cache_lookup(kind(), proof_tier);
            if (proof_tier != ArtifactTier::kNone)
                ctx.note(kind(),
                         std::string("proof report served from artifact store (") +
                             tier_name(proof_tier) + " tier)");
            ctx.record(kind()).detail +=
                "; prove: " + std::to_string(ctx.proof->outputs_proved) + "/" +
                std::to_string(ctx.proof->outputs_total) + " unsat";
            proof_ok = ctx.proof->equivalent;
            if (!proof_ok)
                ctx.error(kind(),
                          "SAT equivalence tier failed (" +
                              std::to_string(ctx.proof->outputs_failed) +
                              " output(s) refuted, " +
                              std::to_string(ctx.proof->outputs_unknown) +
                              " unknown" +
                              (ctx.proof->induction_k && !ctx.proof->induction_ok
                                   ? ", induction failed"
                                   : "") +
                              "); run `matador prove` for details");
        }

        if (!rep.ok()) {
            ctx.error(kind(), "equivalence ladder failed: " +
                                  (rep.first_failure.empty() ? "unknown failure"
                                                             : rep.first_failure));
        }
        if (!ok) ctx.error(kind(), "system-level streaming check failed");
        if (!rep.ok() || !ok || !proof_ok) return StageStatus::kFailed;
        if (ladder_skipped)
            ctx.note(kind(), "equivalence ladder skipped (fast sweep mode)");
        return StageStatus::kOk;
    }
};

class ReportStage final : public Stage {
public:
    StageKind kind() const override { return StageKind::kReport; }

    StageStatus run(CompileContext& ctx) const override {
        if (!ctx.arch || !ctx.design) {
            ctx.warn(kind(), "missing design artifacts; report skipped");
            return StageStatus::kSkipped;
        }
        cost::MatadorResourceInputs rin;
        rin.hcb_mapped_luts = ctx.hcb_mapped_luts;
        rin.arch = *ctx.arch;
        rin.schedule = ctx.design->schedule;
        ctx.resources = cost::estimate_matador_resources(rin);
        const cost::DeviceSpec device = cost::device_by_name(ctx.cfg.device);
        ctx.power = cost::estimate_power(*ctx.resources, device,
                                         ctx.arch->options.clock_mhz);
        return StageStatus::kOk;
    }
};

}  // namespace

std::unique_ptr<Stage> make_default_stage(StageKind kind) {
    switch (kind) {
        case StageKind::kTrain: return std::make_unique<TrainStage>();
        case StageKind::kAnalyze: return std::make_unique<AnalyzeStage>();
        case StageKind::kArchitect: return std::make_unique<ArchitectStage>();
        case StageKind::kGenerate: return std::make_unique<GenerateStage>();
        case StageKind::kVerify: return std::make_unique<VerifyStage>();
        case StageKind::kReport: return std::make_unique<ReportStage>();
    }
    throw std::invalid_argument("make_default_stage: bad stage kind");
}

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

Pipeline::Pipeline(FlowConfig cfg, std::shared_ptr<ArtifactStore> store)
    : cfg_(std::move(cfg)), store_(std::move(store)) {
    if (!store_ && !cfg_.cache_dir.empty())
        store_ = std::make_shared<ArtifactStore>(cfg_.cache_dir);
    for (auto k : stage_order())
        stages_[stage_index(k)] = make_default_stage(k);
}

void Pipeline::set_stage(std::unique_ptr<Stage> stage) {
    stages_[stage_index(stage->kind())] = std::move(stage);
}

CompileContext Pipeline::run(const data::Dataset& train, const data::Dataset& test,
                             StageRange range) const {
    CompileContext ctx(cfg_);
    ctx.store = store_;
    ctx.train_set = &train;
    ctx.test_set = &test;
    run(ctx, range);
    return ctx;
}

CompileContext Pipeline::run_with_model(const model::TrainedModel& m,
                                        const data::Dataset* test,
                                        StageRange range) const {
    CompileContext ctx(cfg_);
    ctx.store = store_;
    ctx.test_set = test;
    ctx.trained = std::make_shared<model::TrainedModel>(m);
    run(ctx, range);
    return ctx;
}

void Pipeline::run(CompileContext& ctx, StageRange range) const {
    if (stage_index(range.from) > stage_index(range.to))
        throw std::invalid_argument("Pipeline::run: range.from is after range.to");
    for (auto k : stage_order()) {
        if (stage_index(k) < stage_index(range.from) ||
            stage_index(k) > stage_index(range.to))
            continue;
        const Stage& stage = *stages_[stage_index(k)];
        StageRecord& rec = ctx.record(k);
        // One measurement feeds both the report and the trace: the span's
        // duration IS rec.seconds (same clock, same two reads).
        obs::TimedSpan span(stage_name(k), "pipeline");
        StageStatus status;
        try {
            status = stage.run(ctx);
        } catch (const std::exception& e) {
            ctx.error(k, std::string(stage.name()) + ": " + e.what());
            status = StageStatus::kFailed;
        }
        rec.status = status;
        {
            util::Json args = util::Json::object();
            args.set("status", status_name(status));
            if (rec.tier != ArtifactTier::kNone)
                args.set("tier", tier_name(rec.tier));
            rec.seconds = span.finish(std::move(args));
        }
    }
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

std::string format_stage_report(const CompileContext& ctx) {
    std::ostringstream out;
    out << "stage      status        wall(ms)\n";
    for (const auto& rec : ctx.records) {
        // "cached" entries say which tier served them (memory vs disk).
        std::string status = status_name(rec.status);
        if (rec.status == StageStatus::kCached)
            status += std::string("(") + tier_name(rec.tier) + ")";
        char line[96];
        std::snprintf(line, sizeof line, "%-10s %-13s %9.2f",
                      stage_name(rec.kind), status.c_str(), rec.seconds * 1e3);
        out << line;
        if (!rec.detail.empty()) out << "  " << rec.detail;
        out << "\n";
    }
    char total[80];
    std::snprintf(total, sizeof total, "%-10s %-13s %9.2f\n", "total",
                  ctx.ok() ? "ok" : "FAILED", ctx.total_seconds() * 1e3);
    out << total;
    return out.str();
}

std::string format_diagnostics(const CompileContext& ctx) {
    std::ostringstream out;
    for (const auto& d : ctx.diagnostics) {
        const char* sev = d.severity == Diagnostic::Severity::kError     ? "error"
                          : d.severity == Diagnostic::Severity::kWarning ? "warning"
                                                                         : "note";
        out << "[" << sev << "] " << stage_name(d.stage) << ": " << d.message
            << "\n";
    }
    return out.str();
}

}  // namespace matador::core
