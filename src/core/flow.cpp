#include "core/flow.hpp"

#include <algorithm>
#include <cmath>

#include "logic/lut_mapper.hpp"
#include "model/clause_schedule.hpp"
#include "rtl/generators.hpp"
#include "sim/accelerator_sim.hpp"
#include "util/rng.hpp"

namespace matador::core {

namespace {

/// Max fanout of a packet-bit net: the number of live clauses that include
/// the most popular feature (either polarity).  Drives the timing model.
std::size_t max_feature_fanout(const model::TrainedModel& m) {
    std::vector<std::size_t> fanout(m.num_features(), 0);
    for (std::size_t c = 0; c < m.num_classes(); ++c) {
        for (std::size_t j = 0; j < m.clauses_per_class(); ++j) {
            const auto& cl = m.clause(c, j);
            for (auto f : cl.include_pos.set_bits()) fanout[f]++;
            for (auto f : cl.include_neg.set_bits()) fanout[f]++;
        }
    }
    std::size_t mx = 0;
    for (auto v : fanout) mx = std::max(mx, v);
    return mx;
}

}  // namespace

FlowResult MatadorFlow::run(const data::Dataset& train,
                            const data::Dataset& test) const {
    tm::TsetlinMachine machine(cfg_.tm, train.num_features, train.num_classes);
    machine.fit(train, cfg_.epochs);
    model::TrainedModel m = machine.export_model();
    return backend(std::move(m), machine.evaluate(train), machine.evaluate(test),
                   &test);
}

FlowResult MatadorFlow::run_with_model(const model::TrainedModel& m,
                                       const data::Dataset* test) const {
    double test_acc = 0.0;
    if (test) {
        std::size_t correct = 0;
        for (std::size_t i = 0; i < test->size(); ++i)
            correct += m.predict(test->examples[i]) == test->labels[i];
        test_acc = test->size() ? double(correct) / double(test->size()) : 0.0;
    }
    return backend(m, 0.0, test_acc, test);
}

FlowResult MatadorFlow::backend(model::TrainedModel m, double train_acc,
                                double test_acc, const data::Dataset* test) const {
    FlowResult r;
    r.train_accuracy = train_acc;
    r.test_accuracy = test_acc;

    // --- analyze ------------------------------------------------------------
    r.arch = model::derive_architecture(m, cfg_.arch);
    r.sparsity = model::analyze_sparsity(m);
    r.sharing = model::analyze_sharing(m, r.arch.plan);
    r.max_feature_fanout = max_feature_fanout(m);

    // --- generate + map -----------------------------------------------------
    rtl::RtlDesign design = rtl::generate_rtl(m, r.arch, cfg_.strash);
    for (const auto& hcb : design.hcbs) {
        if (cfg_.strash) {
            const auto mapped = logic::map_to_luts(hcb.aig);
            r.hcb_mapped_luts += mapped.lut_count;
            r.hcb_max_depth = std::max(r.hcb_max_depth, mapped.depth);
        } else {
            // DON'T_TOUCH semantics (Fig. 8): synthesis may neither share
            // nor repack the clause gates, so every AND instantiates as its
            // own LUT and depth follows the raw gate network.
            r.hcb_mapped_luts += hcb.aig.count_reachable_ands();
            r.hcb_max_depth = std::max(r.hcb_max_depth, hcb.aig.depth());
        }
    }

    // --- timing-driven frequency selection ----------------------------------
    r.timing = cost::estimate_timing(r.hcb_max_depth, r.max_feature_fanout);
    if (cfg_.auto_frequency) {
        model::ArchOptions opts = cfg_.arch;
        opts.clock_mhz = r.timing.recommended_mhz;
        r.arch = model::derive_architecture(m, opts);
        design.arch = r.arch;
    }

    // --- resources + power --------------------------------------------------
    cost::MatadorResourceInputs rin;
    rin.hcb_mapped_luts = r.hcb_mapped_luts;
    rin.arch = r.arch;
    rin.schedule = design.schedule;
    r.resources = cost::estimate_matador_resources(rin);
    const cost::DeviceSpec device = cost::device_by_name(cfg_.device);
    r.power = cost::estimate_power(r.resources, device, r.arch.options.clock_mhz);

    // --- verification ladder (auto-debug) -----------------------------------
    if (!cfg_.skip_rtl_verification) {
        r.verification =
            rtl::verify_design(design, m, cfg_.verify_vectors, /*seed=*/1234);
    } else {
        r.verification.expressions_match_model = true;
        r.verification.hcb_aigs_match_expressions = true;
        r.verification.rtl_matches_aigs = true;
    }

    // --- system-level streaming check (cycle-accurate) -----------------------
    {
        std::vector<util::BitVector> inputs;
        util::Xoshiro256ss rng(4321);
        const std::size_t n = std::max<std::size_t>(2, cfg_.sim_datapoints);
        for (std::size_t i = 0; i < n; ++i) {
            if (test && i < test->size()) {
                inputs.push_back(test->examples[i]);
            } else {
                util::BitVector x(m.num_features());
                for (std::size_t w = 0; w < x.word_count(); ++w) x.set_word(w, rng());
                inputs.push_back(std::move(x));
            }
        }
        sim::AcceleratorSim simulator(m, r.arch);
        const sim::SimResult sr = simulator.run(inputs);

        bool ok = sr.predictions.size() == inputs.size();
        for (std::size_t i = 0; ok && i < inputs.size(); ++i)
            ok = sr.predictions[i] == m.predict(inputs[i]);
        ok = ok && sr.first_latency_cycles == r.arch.latency_cycles();
        ok = ok && std::llround(sr.mean_initiation_interval) ==
                       (long long)(r.arch.initiation_interval());
        r.system_verified = ok;
        r.measured_latency_cycles = sr.first_latency_cycles;
        r.measured_ii = sr.mean_initiation_interval;
    }

    r.latency_us = r.arch.latency_us();
    r.throughput_inf_per_s = r.arch.throughput_inf_per_s();

    // --- optional RTL emission ------------------------------------------------
    if (!cfg_.rtl_output_dir.empty())
        r.rtl_files = rtl::write_design(design, cfg_.rtl_output_dir);

    r.trained_model = std::move(m);
    return r;
}

}  // namespace matador::core
