#include "core/flow.hpp"

#include "core/pipeline.hpp"

namespace matador::core {

// MatadorFlow predates the staged pipeline; both entry points now just run
// the full stage range and project the context onto the classic FlowResult.

FlowResult MatadorFlow::run(const data::Dataset& train,
                            const data::Dataset& test) const {
    return Pipeline(cfg_).run(train, test).to_flow_result();
}

FlowResult MatadorFlow::run_with_model(const model::TrainedModel& m,
                                       const data::Dataset* test) const {
    return Pipeline(cfg_).run_with_model(m, test).to_flow_result();
}

}  // namespace matador::core
