// Staged compile pipeline: the Fig. 6 automation flow as a pass manager.
//
// The six stages of the paper's flow —
//   train -> analyze -> architect -> generate -> verify -> report
// — are individual `Stage` passes over a shared `CompileContext` artifact
// store (trained model, sharing stats, architecture, RTL design, reports).
// The `Pipeline` driver runs any contiguous stage range, records a
// `StageStatus` plus wall-clock seconds per stage, collects structured
// diagnostics instead of ad-hoc bools, and reuses expensive artifacts
// through the two-tier, stage-scoped `ArtifactStore`: trained models are
// keyed by the front-end config slice, generated HCB netlists by the
// backend slice (model hash + bus_width + strash), each backed by a
// single-flight memory tier and an optional on-disk tier (cache_dir).
// `Pipeline::sweep` (see sweep.hpp) fans a FlowConfig grid across worker
// threads sharing one store.
//
// `MatadorFlow` in flow.hpp remains as a thin compatibility shim over this.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/artifact_store.hpp"
#include "core/flow.hpp"
#include "rtl/generators.hpp"

namespace matador::core {

// ---------------------------------------------------------------------------
// Stage identity and status
// ---------------------------------------------------------------------------

/// The six Fig. 6 stages, in execution order.
enum class StageKind : unsigned {
    kTrain = 0,
    kAnalyze,
    kArchitect,
    kGenerate,
    kVerify,
    kReport,
};

inline constexpr std::size_t kNumStages = 6;

constexpr std::size_t stage_index(StageKind k) { return std::size_t(k); }

/// All stages in execution order.
std::array<StageKind, kNumStages> stage_order();

/// Lower-case stage name ("train", "analyze", ...).
const char* stage_name(StageKind k);

/// Parse a stage name; nullopt for unknown names.
std::optional<StageKind> stage_from_name(const std::string& name);

/// Outcome of one stage execution.
enum class StageStatus {
    kNotRun,   ///< outside the requested range / pipeline not run yet
    kOk,       ///< ran and succeeded
    kCached,   ///< artifacts served from the ArtifactStore (see record tier)
    kSkipped,  ///< prerequisites missing (earlier stage failed or not run)
    kFailed,   ///< ran and found errors (see diagnostics)
};

const char* status_name(StageStatus s);

/// One structured diagnostic, attributed to the stage that emitted it.
struct Diagnostic {
    enum class Severity { kNote, kWarning, kError };
    Severity severity = Severity::kNote;
    StageKind stage = StageKind::kTrain;
    std::string message;
};

/// Per-stage execution record (status + wall-clock instrumentation).
struct StageRecord {
    StageKind kind = StageKind::kTrain;
    StageStatus status = StageStatus::kNotRun;
    double seconds = 0.0;
    /// For kCached: which store tier served the artifacts.
    ArtifactTier tier = ArtifactTier::kNone;
    /// Optional one-line stage summary for the stage report / sweep JSON
    /// (the train stage reports "epochs=7/20 stop=early-stop ...").
    std::string detail;
};

// ---------------------------------------------------------------------------
// CompileContext: the shared artifact store
// ---------------------------------------------------------------------------

/// Everything the stages read and write.  A context outlives a single
/// `Pipeline::run` call, so a caller can stop after one stage, inspect or
/// adjust artifacts, and resume from the next.
class CompileContext {
public:
    explicit CompileContext(FlowConfig cfg);

    FlowConfig cfg;

    // -- inputs (non-owning; must outlive the context's pipeline runs) -----
    const data::Dataset* train_set = nullptr;
    const data::Dataset* test_set = nullptr;

    // -- train ------------------------------------------------------------
    std::shared_ptr<const model::TrainedModel> trained;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
    bool model_imported = false;  ///< yellow flow: model supplied, not trained
    /// Training record (epochs run, stop reason, accuracy history); absent
    /// for imported models.  Served from the artifact store on cache hits.
    std::optional<train::FitReport> train_report;

    // -- analyze ----------------------------------------------------------
    std::optional<model::SparsityStats> sparsity;
    std::optional<model::SharingStats> sharing;
    /// Computed by analyze; generate recomputes it when analyze was not in
    /// the executed range (the timing model needs it).
    std::optional<std::size_t> max_feature_fanout;

    // -- architect --------------------------------------------------------
    std::optional<model::ArchParams> arch;

    // -- generate ---------------------------------------------------------
    std::shared_ptr<rtl::RtlDesign> design;
    std::size_t hcb_mapped_luts = 0;
    unsigned hcb_max_depth = 0;
    std::optional<cost::TimingReport> timing;
    std::vector<std::string> rtl_files;

    // -- verify -----------------------------------------------------------
    /// Level-0 static analysis of the generated design (lint rung); filled
    /// before the simulation ladder runs.
    std::optional<lint::LintReport> lint_report;
    /// Level-3/4 SAT equivalence proof (per-output miters + k-induction);
    /// only filled when cfg.verify_sat is set.
    std::optional<sat::ProveReport> proof;
    std::optional<rtl::VerificationReport> verification;
    bool system_verified = false;
    std::size_t measured_latency_cycles = 0;
    double measured_ii = 0.0;

    // -- report -----------------------------------------------------------
    std::optional<cost::ResourceReport> resources;
    std::optional<cost::PowerReport> power;

    // -- bookkeeping ------------------------------------------------------
    std::shared_ptr<ArtifactStore> store;  ///< may be null (no caching)
    std::array<StageRecord, kNumStages> records;
    std::vector<Diagnostic> diagnostics;

    StageRecord& record(StageKind k) { return records[stage_index(k)]; }
    const StageRecord& record(StageKind k) const { return records[stage_index(k)]; }

    void note(StageKind stage, std::string message);
    void warn(StageKind stage, std::string message);
    void error(StageKind stage, std::string message);

    bool has_errors() const;
    /// True when no stage failed and no error diagnostic was emitted.
    bool ok() const;
    /// Sum of per-stage wall-clock seconds.
    double total_seconds() const;

    /// Assemble the classic FlowResult view from whatever artifacts exist.
    FlowResult to_flow_result() const;
};

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// One named pass of the pipeline.  Stages must be reentrant: `run` may be
/// called on many contexts (sweep workers run stages concurrently).
class Stage {
public:
    virtual ~Stage() = default;
    virtual StageKind kind() const = 0;
    const char* name() const { return stage_name(kind()); }
    /// Execute on `ctx`.  Missing prerequisites => return kSkipped (with a
    /// warning); detected errors => kFailed (with error diagnostics).
    /// Thrown exceptions are converted to kFailed by the driver.
    virtual StageStatus run(CompileContext& ctx) const = 0;
};

/// Construct the default implementation of a stage.
std::unique_ptr<Stage> make_default_stage(StageKind kind);

/// A contiguous range of stages to execute (inclusive on both ends).
struct StageRange {
    StageKind from = StageKind::kTrain;
    StageKind to = StageKind::kReport;
};

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

struct SweepOptions;  // sweep.hpp
struct SweepResult;   // sweep.hpp

class Pipeline {
public:
    /// `store` may be shared across pipelines (sweeps do).  When null, a
    /// pipeline-private store is created over cfg.cache_dir if that is set
    /// (so a restarted run rehydrates from disk); otherwise the run is
    /// uncached.
    explicit Pipeline(FlowConfig cfg,
                      std::shared_ptr<ArtifactStore> store = nullptr);

    const FlowConfig& config() const { return cfg_; }
    const std::shared_ptr<ArtifactStore>& store() const { return store_; }

    /// Replace the stage of the same kind (instrumentation / testing hook,
    /// in the pass-manager tradition).
    void set_stage(std::unique_ptr<Stage> stage);

    /// Full run: train on `train`, evaluate on `test`, execute `range`.
    CompileContext run(const data::Dataset& train, const data::Dataset& test,
                       StageRange range = {}) const;

    /// Yellow import flow: start from an existing model (no training).
    CompileContext run_with_model(const model::TrainedModel& m,
                                  const data::Dataset* test,
                                  StageRange range = {}) const;

    /// Incremental run: drive an existing context through `range`.  Use to
    /// stop after a stage, inspect artifacts, and resume later.
    void run(CompileContext& ctx, StageRange range = {}) const;

    /// Multi-threaded design-space exploration over a FlowConfig grid
    /// (implemented in sweep.cpp; see sweep.hpp for the result types).
    static SweepResult sweep(const data::Dataset& train,
                             const data::Dataset& test,
                             const std::vector<FlowConfig>& grid,
                             const SweepOptions& options);

private:
    FlowConfig cfg_;
    std::shared_ptr<ArtifactStore> store_;
    std::array<std::unique_ptr<Stage>, kNumStages> stages_;
};

/// Render the per-stage status / timing table of a context.
std::string format_stage_report(const CompileContext& ctx);

/// Render the diagnostics list ("[error] verify: ..." lines; empty when none).
std::string format_diagnostics(const CompileContext& ctx);

}  // namespace matador::core
