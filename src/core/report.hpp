// Report formatting: Table-I-style rows and full flow summaries.
#pragma once

#include <string>
#include <vector>

#include "core/flow.hpp"

namespace matador::core {

/// One accelerator's worth of Table I columns.
struct TableRow {
    std::string model_name;   ///< e.g. "MATADOR" / "FINN"
    std::size_t luts = 0;
    std::size_t registers = 0;
    std::size_t f7_mux = 0;
    std::size_t f8_mux = 0;
    std::size_t slices = 0;
    std::size_t lut_logic = 0;
    std::size_t lut_mem = 0;
    double bram36 = 0.0;
    double accuracy_pct = 0.0;
    double total_power_w = 0.0;
    double dynamic_power_w = 0.0;
    double latency_us = 0.0;
    double throughput_inf_s = 0.0;
};

/// Convert a flow result into a table row.
TableRow to_table_row(const FlowResult& r, const std::string& name = "MATADOR");

/// Render rows grouped under dataset headings, Table I layout.
std::string format_table(
    const std::vector<std::pair<std::string, std::vector<TableRow>>>& groups);

/// Human-readable multi-section summary of one flow run.
std::string format_flow_summary(const FlowResult& r, const std::string& title);

}  // namespace matador::core
