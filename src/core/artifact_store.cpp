#include "core/artifact_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "rtl/generators.hpp"
#include "rtl/verilog_parser.hpp"
#include "rtl/verilog_writer.hpp"
#include "util/crc32.hpp"
#include "util/fsio.hpp"

namespace fs = std::filesystem;

namespace matador::core {

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

std::uint64_t frontend_config_hash(const FlowConfig& cfg) {
    Fnv1a h;
    h.u64(cfg.tm.clauses_per_class);
    h.u64(std::uint64_t(std::int64_t(cfg.tm.threshold)));
    h.f64(cfg.tm.specificity);
    h.u64(cfg.tm.boost_true_positive ? 1 : 0);
    h.u64(std::uint64_t(cfg.tm.feedback));
    h.u64(cfg.tm.seed);
    h.u64(cfg.epochs);
    // Early-stopping knobs change which epoch's snapshot is returned, so
    // they are part of the trained model's identity.  train_threads is
    // deliberately absent: training is bit-reproducible at any thread count.
    h.u64(cfg.eval_every);
    h.u64(cfg.patience);
    return h.digest();
}

std::uint64_t backend_config_hash(const FlowConfig& cfg, std::uint64_t model_hash) {
    Fnv1a h;
    h.u64(model_hash);
    h.u64(cfg.arch.bus_width);
    h.u64(cfg.strash ? 1 : 0);
    return h.digest();
}

std::uint64_t lint_cache_key(const FlowConfig& cfg, std::uint64_t model_hash) {
    Fnv1a h;
    h.u64(backend_config_hash(cfg, model_hash));
    // A verdict is produced by a checker: fold its version in so lint code
    // changes invalidate cached reports instead of silently resurfacing.
    h.u64(lint::kLintSubsystemVersion);
    return h.digest();
}

std::uint64_t proof_cache_key(const FlowConfig& cfg, std::uint64_t model_hash) {
    Fnv1a h;
    h.u64(backend_config_hash(cfg, model_hash));
    h.u64(sat::kSatSubsystemVersion);
    // The prove knobs that change what was actually proved.
    h.u64(cfg.induction_k);
    return h.digest();
}

std::uint64_t dataset_fingerprint(const data::Dataset& ds) {
    Fnv1a h;
    h.u64(ds.num_features);
    h.u64(ds.num_classes);
    h.u64(ds.size());
    for (auto label : ds.labels) h.u64(label);
    for (const auto& x : ds.examples) h.u64(x.hash());
    return h.digest();
}

std::string key_hex(std::uint64_t key) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)key);
    return buf;
}

const char* tier_name(ArtifactTier t) {
    switch (t) {
        case ArtifactTier::kNone: return "none";
        case ArtifactTier::kMemory: return "memory";
        case ArtifactTier::kDisk: return "disk";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Manifest helpers
// ---------------------------------------------------------------------------

namespace {

// v1: key/value lines + "end" trailer.
// v2: adds "crc <file> <hex>" lines — a CRC-32 over every payload file in
//     the entry (model.tm, hcb_*.v, report.json), verified on load so
//     silent payload corruption degrades to recompute + repair exactly
//     like a corrupt manifest.  v1 entries (no crc lines) still load.
constexpr unsigned kManifestVersion = 2;
constexpr const char* kManifestName = "manifest.txt";

void warn_at(const ArtifactStore::WarnFn& warn, const std::string& msg) {
    if (warn) warn(msg);
}

std::string fmt_double(double v) {
    // Hexfloat: exact binary round-trip through strtod.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

bool parse_double(const std::string& s, double* out) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') return false;
    *out = v;
    return true;
}

/// Parsed "key value..." manifest lines, in order, between the version
/// header and the "end" trailer.
struct Manifest {
    std::vector<std::pair<std::string, std::string>> lines;

    const std::string* find(const std::string& key) const {
        for (const auto& [k, v] : lines)
            if (k == key) return &v;
        return nullptr;
    }
};

/// Read and validate a manifest.  Returns nullopt (with a warning) on a
/// missing / truncated / corrupt / future-version file.
std::optional<Manifest> read_manifest(const fs::path& path, const char* stage_name,
                                      std::uint64_t key,
                                      const ArtifactStore::WarnFn& warn) {
    std::ifstream in(path);
    if (!in) return std::nullopt;  // no entry; not worth a warning
    const std::string where = path.string();

    std::string line;
    if (!std::getline(in, line)) {
        warn_at(warn, "artifact store: empty manifest " + where + "; recomputing");
        return std::nullopt;
    }
    const std::string magic = "MATADOR-ARTIFACT v";
    if (line.rfind(magic, 0) != 0) {
        warn_at(warn, "artifact store: bad manifest header in " + where +
                          "; recomputing");
        return std::nullopt;
    }
    unsigned version = 0;
    try {
        version = unsigned(std::stoul(line.substr(magic.size())));
    } catch (...) {
        version = 0;
    }
    if (version == 0 || version > kManifestVersion) {
        warn_at(warn, "artifact store: manifest " + where + " has format v" +
                          line.substr(magic.size()) +
                          " (this build reads up to v" +
                          std::to_string(kManifestVersion) + "); recomputing");
        return std::nullopt;
    }

    Manifest m;
    bool ended = false;
    while (std::getline(in, line)) {
        if (line == "end") {
            ended = true;
            break;
        }
        const auto sp = line.find(' ');
        if (sp == std::string::npos || sp == 0) {
            warn_at(warn, "artifact store: corrupt manifest line in " + where +
                              ": '" + line + "'; recomputing");
            return std::nullopt;
        }
        m.lines.emplace_back(line.substr(0, sp), line.substr(sp + 1));
    }
    if (!ended) {
        warn_at(warn, "artifact store: truncated manifest " + where +
                          " (missing 'end'); recomputing");
        return std::nullopt;
    }

    const std::string* stage = m.find("stage");
    const std::string* k = m.find("key");
    if (!stage || *stage != stage_name || !k || *k != key_hex(key)) {
        warn_at(warn, "artifact store: manifest " + where +
                          " does not match its entry (stage/key mismatch); "
                          "recomputing");
        return std::nullopt;
    }
    return m;
}

/// "crc <file> <hex>" manifest line for payload bytes already in memory.
std::string crc_line(const std::string& file, const std::string& bytes) {
    return "crc " + file + " " + util::crc32_hex(util::crc32(bytes)) + "\n";
}

/// Same, for a payload that was streamed to disk (e.g. model.tm).
std::string crc_line_of_file(const fs::path& path) {
    return crc_line(path.filename().string(), util::read_file(path.string()));
}

/// Verify every "crc" line of a manifest against the entry's payload
/// bytes.  v1 manifests carry none and pass vacuously.  A mismatch (or an
/// unreadable payload) warns, bumps artifact_crc_mismatch_total, and
/// returns false so the caller recomputes — and the recompute's save
/// repairs the entry on disk.
bool verify_payload_crcs(const Manifest& m, const fs::path& entry,
                         const ArtifactStore::WarnFn& warn) {
    for (const auto& [key, value] : m.lines) {
        if (key != "crc") continue;
        const auto sp = value.find(' ');
        if (sp == std::string::npos || sp == 0) {
            warn_at(warn, "artifact store: corrupt crc line in " +
                              entry.string() + "; recomputing");
            return false;
        }
        const std::string file = value.substr(0, sp);
        const std::string want = value.substr(sp + 1);
        std::string bytes;
        try {
            bytes = util::read_file((entry / file).string());
        } catch (const std::exception&) {
            warn_at(warn, "artifact store: payload " + file + " missing from " +
                              entry.string() + "; recomputing");
            return false;
        }
        if (util::crc32_hex(util::crc32(bytes)) != want) {
            obs::MetricsRegistry::global()
                .counter("artifact_crc_mismatch_total")
                .add(1);
            warn_at(warn, "artifact store: payload CRC mismatch on " + file +
                              " in " + entry.string() +
                              "; recomputing and repairing");
            return false;
        }
    }
    return true;
}

/// Write `body` under the entry directory near-atomically: emit into a
/// sibling per-process .tmp directory, then rename over.  An existing
/// entry (e.g. one that failed its load-time validation and got
/// recomputed) is replaced.  The pid suffix keeps concurrent processes
/// sharing one cache_dir from scribbling into each other's staging area;
/// within a process the per-key single-flight lock already serializes.
void write_entry(const fs::path& entry_dir,
                 const std::function<void(const fs::path&)>& body,
                 const ArtifactStore::WarnFn& warn) {
    const fs::path tmp =
        entry_dir.string() + ".tmp." + std::to_string(::getpid());
    std::error_code ec;
    fs::remove_all(tmp, ec);
    try {
        fs::create_directories(tmp);
        body(tmp);
        // Death here leaves only the .tmp staging dir: readers never see a
        // half-written entry, and the debris is skipped by is_key_dir_name.
        fault::FsHooks::instance().crash_point("store.publish.pre-rename");
        // The publish rename retries transient failures under the shared
        // backoff policy; a permanent error (or an exhausted budget) falls
        // through to the warn below — the store degrades to uncached.
        const fault::RetryPolicy policy = fault::retry_policy();
        for (int attempt = 1;; ++attempt) {
            int err = 0;
            if (const auto a = fault::FsHooks::instance().check(
                    fault::Op::kRename, entry_dir.string());
                a.fire) {
                err = a.err;
            } else {
                std::error_code rec;
                fs::rename(tmp, entry_dir, rec);
                if (rec) {
                    // Destination exists (a stale or corrupt entry being
                    // repaired): replace it.
                    fs::remove_all(entry_dir, rec);
                    fs::rename(tmp, entry_dir, rec);
                    err = rec.value();
                }
            }
            if (err == 0) break;
            if (!fault::is_transient_errno(err) ||
                attempt >= policy.max_attempts) {
                errno = err;
                throw util::FsError(
                    "entry rename failed: " + std::string(strerror(err)), err);
            }
            obs::MetricsRegistry::global().counter("fs_retry_total").add(1);
            fault::sleep_for_ms(fault::backoff_delay_ms(
                policy, entry_dir.string(), attempt));
        }
    } catch (const std::exception& e) {
        fs::remove_all(tmp, ec);
        warn_at(warn, std::string("artifact store: could not persist ") +
                          entry_dir.string() + ": " + e.what());
    }
}

/// True for a well-formed entry directory name (16 lower-hex chars).
/// Filters out stale ".tmp.<pid>" staging dirs left by a crashed writer.
bool is_key_dir_name(const std::string& name) {
    if (name.size() != 16) return false;
    for (char c : name)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
    return true;
}

std::string hcb_module_name(std::size_t k) {
    return "hcb_" + std::to_string(k) + "_comb";
}

std::string hcb_file_name(std::size_t k) {
    return "hcb_" + std::to_string(k) + ".v";
}

/// Emitted Verilog for one cached HCB netlist - shared by save (write the
/// text) and load (byte-identity self-check).
std::string hcb_verilog(const rtl::HcbNetlist& hcb, std::size_t k, bool strash) {
    return rtl::emit_module(
        rtl::generate_hcb_comb_module(hcb, hcb_module_name(k), !strash));
}

/// Sanity ceiling for manifest-declared counts: a corrupt length field
/// must become a clean "corrupt entry" verdict, not a giant allocation.
constexpr std::size_t kMaxManifestCount = 1u << 24;

std::vector<std::uint32_t> parse_id_list(const std::string& v, bool* ok) {
    std::istringstream ss(v);
    std::size_t n = 0;
    *ok = false;
    if (!(ss >> n) || n > kMaxManifestCount) return {};
    std::vector<std::uint32_t> ids(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!(ss >> ids[i])) return {};
    std::string extra;
    if (ss >> extra) return {};
    *ok = true;
    return ids;
}

/// Decode the training-record fields of a train-stage manifest (epochs run,
/// stop reason, best epoch, producer threads, accuracy history).  Strict:
/// any missing or malformed field makes the entry untrusted.
bool parse_fit_report(const Manifest& m, train::FitReport* out) {
    const std::string* epochs = m.find("epochs_run");
    const std::string* reason = m.find("stop_reason");
    const std::string* best = m.find("best_epoch");
    const std::string* threads = m.find("threads_used");
    const std::string* history = m.find("history");
    if (!epochs || !reason || !best || !threads || !history) return false;
    try {
        out->epochs_run = std::stoul(*epochs);
        out->best_epoch = std::stoul(*best);
        out->threads_used = unsigned(std::stoul(*threads));
    } catch (...) {
        return false;
    }
    const auto parsed = train::stop_reason_from_name(*reason);
    if (!parsed) return false;
    out->stop_reason = *parsed;

    std::istringstream ss(*history);
    std::size_t n = 0;
    if (!(ss >> n) || n > kMaxManifestCount) return false;
    out->history.clear();
    out->history.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        train::EpochMetrics e;
        std::string ta, ea;
        if (!(ss >> e.epoch >> ta >> ea) || !parse_double(ta, &e.train_accuracy) ||
            !parse_double(ea, &e.eval_accuracy))
            return false;
        out->history.push_back(e);
    }
    std::string extra;
    if (ss >> extra) return false;
    return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

ArtifactStore::ArtifactStore(std::string cache_dir) : dir_(std::move(cache_dir)) {}

template <typename T>
T ArtifactStore::get_or_compute(StageSlots<T>& stage, const char* stage_name,
                                std::uint64_t key, const std::function<T()>& fn,
                                ArtifactTier* served, const WarnFn& warn) {
    std::shared_ptr<typename StageSlots<T>::Slot> slot;
    {
        std::lock_guard<std::mutex> lock(stage.mu);
        auto& entry = stage.slots[key];
        if (!entry) entry = std::make_shared<typename StageSlots<T>::Slot>();
        slot = entry;
    }
    // Per-key lock: the first caller loads or computes while same-key
    // callers wait; other keys proceed in parallel.
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->computed) {
        stage.memory_hits++;
        if (served) *served = ArtifactTier::kMemory;
        return slot->artifact;
    }
    if (persistent()) {
        // A disk entry must never be able to fail the request: any load
        // error - however exotic the corruption - degrades to a recompute.
        std::optional<T> loaded;
        try {
            loaded = load_disk(stage_name, key, warn, (T*)nullptr);
        } catch (const std::exception& e) {
            warn_at(warn, std::string("artifact store: unreadable ") +
                              stage_name + " entry " + key_hex(key) + " (" +
                              e.what() + "); recomputing");
        }
        if (loaded) {
            slot->artifact = std::move(*loaded);
            slot->computed = true;
            stage.disk_hits++;
            if (served) *served = ArtifactTier::kDisk;
            return slot->artifact;
        }
    }
    slot->artifact = fn();
    slot->computed = true;
    stage.misses++;
    if (served) *served = ArtifactTier::kNone;
    if (persistent()) save_disk(stage_name, key, slot->artifact, warn);
    return slot->artifact;
}

TrainedArtifact ArtifactStore::get_or_compute_trained(
    std::uint64_t key, const std::function<TrainedArtifact()>& fn,
    ArtifactTier* served, const WarnFn& warn) {
    return get_or_compute(train_, "train", key, fn, served, warn);
}

GeneratedArtifact ArtifactStore::get_or_compute_generated(
    std::uint64_t key, const std::function<GeneratedArtifact()>& fn,
    ArtifactTier* served, const WarnFn& warn) {
    return get_or_compute(generate_, "generate", key, fn, served, warn);
}

LintArtifact ArtifactStore::get_or_compute_lint(
    std::uint64_t key, const std::function<LintArtifact()>& fn,
    ArtifactTier* served, const WarnFn& warn) {
    return get_or_compute(lint_, "lint", key, fn, served, warn);
}

ProofArtifact ArtifactStore::get_or_compute_proof(
    std::uint64_t key, const std::function<ProofArtifact()>& fn,
    ArtifactTier* served, const WarnFn& warn) {
    return get_or_compute(proof_, "proof", key, fn, served, warn);
}

// ---------------------------------------------------------------------------
// Disk tier: trained models
// ---------------------------------------------------------------------------

std::optional<TrainedArtifact> ArtifactStore::load_disk(const char* stage_name,
                                                        std::uint64_t key,
                                                        const WarnFn& warn,
                                                        TrainedArtifact*) const {
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    const auto manifest = read_manifest(entry / kManifestName, stage_name, key, warn);
    if (!manifest) return std::nullopt;
    if (!verify_payload_crcs(*manifest, entry, warn)) return std::nullopt;

    TrainedArtifact a;
    const std::string* train_acc = manifest->find("train_accuracy");
    const std::string* test_acc = manifest->find("test_accuracy");
    if (!train_acc || !test_acc || !parse_double(*train_acc, &a.train_accuracy) ||
        !parse_double(*test_acc, &a.test_accuracy)) {
        warn_at(warn, "artifact store: corrupt accuracy fields in " +
                          entry.string() + "; recomputing");
        return std::nullopt;
    }
    if (!parse_fit_report(*manifest, &a.fit)) {
        warn_at(warn, "artifact store: corrupt training record in " +
                          entry.string() + "; recomputing");
        return std::nullopt;
    }
    a.fit.train_accuracy = a.train_accuracy;
    a.fit.eval_accuracy = a.test_accuracy;
    try {
        a.model = std::make_shared<model::TrainedModel>(
            model::TrainedModel::load_file((entry / "model.tm").string()));
    } catch (const std::exception& e) {
        warn_at(warn, "artifact store: unusable model in " + entry.string() +
                          " (" + e.what() + "); recomputing");
        return std::nullopt;
    }
    return a;
}

void ArtifactStore::save_disk(const char* stage_name, std::uint64_t key,
                              const TrainedArtifact& a, const WarnFn& warn) const {
    if (!a.model) return;  // nothing worth persisting
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    write_entry(
        entry,
        [&](const fs::path& tmp) {
            a.model->save_file((tmp / "model.tm").string());
            std::ofstream out(tmp / kManifestName);
            out << "MATADOR-ARTIFACT v" << kManifestVersion << "\n";
            out << "stage " << stage_name << "\n";
            out << "key " << key_hex(key) << "\n";
            out << "train_accuracy " << fmt_double(a.train_accuracy) << "\n";
            out << "test_accuracy " << fmt_double(a.test_accuracy) << "\n";
            out << "epochs_run " << a.fit.epochs_run << "\n";
            out << "stop_reason " << train::stop_reason_name(a.fit.stop_reason)
                << "\n";
            out << "best_epoch " << a.fit.best_epoch << "\n";
            out << "threads_used " << a.fit.threads_used << "\n";
            out << "history " << a.fit.history.size();
            for (const auto& m : a.fit.history)
                out << " " << m.epoch << " " << fmt_double(m.train_accuracy)
                    << " " << fmt_double(m.eval_accuracy);
            out << "\n";
            out << crc_line_of_file(tmp / "model.tm");
            out << "end\n";
            if (!out) throw std::runtime_error("manifest write failed");
        },
        warn);
}

// ---------------------------------------------------------------------------
// Disk tier: generated RTL
// ---------------------------------------------------------------------------

std::optional<GeneratedArtifact> ArtifactStore::load_disk(const char* stage_name,
                                                          std::uint64_t key,
                                                          const WarnFn& warn,
                                                          GeneratedArtifact*) const {
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    const auto manifest = read_manifest(entry / kManifestName, stage_name, key, warn);
    if (!manifest) return std::nullopt;
    if (!verify_payload_crcs(*manifest, entry, warn)) return std::nullopt;

    const auto corrupt = [&](const std::string& what) {
        warn_at(warn, "artifact store: " + what + " in " + entry.string() +
                          "; recomputing");
        return std::nullopt;
    };

    GeneratedArtifact g;
    const std::string* strash = manifest->find("strash");
    const std::string* luts = manifest->find("mapped_luts");
    const std::string* depth = manifest->find("max_depth");
    const std::string* count = manifest->find("hcbs");
    if (!strash || (*strash != "0" && *strash != "1") || !luts || !depth || !count)
        return corrupt("missing or corrupt summary fields");
    g.strash = *strash == "1";
    try {
        g.hcb_mapped_luts = std::stoul(*luts);
        g.hcb_max_depth = unsigned(std::stoul(*depth));
    } catch (...) {
        return corrupt("corrupt LUT summary");
    }
    std::size_t num_hcbs = 0;
    try {
        num_hcbs = std::stoul(*count);
    } catch (...) {
        return corrupt("corrupt hcb count");
    }
    if (num_hcbs > kMaxManifestCount) return corrupt("corrupt hcb count");

    // Per-HCB spec lines, in manifest order: hcb / active / passthrough / chain.
    auto hcbs = std::make_shared<std::vector<rtl::HcbNetlist>>();
    hcbs->reserve(num_hcbs);
    std::size_t li = 0;
    const auto& lines = manifest->lines;
    const auto next_line = [&](const std::string& want) -> const std::string* {
        while (li < lines.size() && lines[li].first != "hcb" &&
               lines[li].first != "active" && lines[li].first != "passthrough" &&
               lines[li].first != "chain")
            ++li;
        if (li >= lines.size() || lines[li].first != want) return nullptr;
        return &lines[li++].second;
    };

    for (std::size_t k = 0; k < num_hcbs; ++k) {
        rtl::HcbSpec spec;
        const std::string* hdr = next_line("hcb");
        if (!hdr) return corrupt("missing hcb spec line");
        {
            std::istringstream ss(*hdr);
            if (!(ss >> spec.packet >> spec.lo >> spec.hi) || spec.packet != k)
                return corrupt("corrupt hcb spec line");
        }
        bool ok = false;
        const std::string* act = next_line("active");
        if (!act) return corrupt("missing active-clause list");
        spec.active_clauses = parse_id_list(*act, &ok);
        if (!ok) return corrupt("corrupt active-clause list");
        const std::string* pass = next_line("passthrough");
        if (!pass) return corrupt("missing passthrough-clause list");
        spec.passthrough_clauses = parse_id_list(*pass, &ok);
        if (!ok) return corrupt("corrupt passthrough-clause list");
        const std::string* chain = next_line("chain");
        if (!chain) return corrupt("missing chain flags");
        {
            const auto bits = parse_id_list(*chain, &ok);
            if (!ok || bits.size() != spec.active_clauses.size())
                return corrupt("corrupt chain flags");
            spec.has_chain_input.reserve(bits.size());
            for (auto b : bits) spec.has_chain_input.push_back(b != 0);
        }

        // RTL roundtrip: parse the stored Verilog back into an AIG, then
        // re-emit and demand byte identity with the stored text.  Anything
        // short of that (corruption, a format drift, a parser gap) makes
        // the entry untrusted.
        std::string text;
        try {
            text = util::read_file(entry / hcb_file_name(k));
        } catch (const std::exception& e) {
            return corrupt(std::string("unreadable RTL (") + e.what() + ")");
        }
        rtl::HcbNetlist netlist;
        netlist.spec = std::move(spec);
        try {
            netlist.aig = rtl::parse_structural_verilog(text, g.strash).aig;
        } catch (const std::exception& e) {
            return corrupt(std::string("unparsable RTL (") + e.what() + ")");
        }
        if (hcb_verilog(netlist, k, g.strash) != text)
            return corrupt("RTL failed the byte-identity roundtrip check");
        hcbs->push_back(std::move(netlist));
    }
    g.hcbs = std::move(hcbs);
    return g;
}

void ArtifactStore::save_disk(const char* stage_name, std::uint64_t key,
                              const GeneratedArtifact& a, const WarnFn& warn) const {
    if (!a.hcbs) return;  // nothing worth persisting
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    write_entry(
        entry,
        [&](const fs::path& tmp) {
            std::ofstream out(tmp / kManifestName);
            out << "MATADOR-ARTIFACT v" << kManifestVersion << "\n";
            out << "stage " << stage_name << "\n";
            out << "key " << key_hex(key) << "\n";
            out << "strash " << (a.strash ? 1 : 0) << "\n";
            out << "mapped_luts " << a.hcb_mapped_luts << "\n";
            out << "max_depth " << a.hcb_max_depth << "\n";
            out << "hcbs " << a.hcbs->size() << "\n";
            for (std::size_t k = 0; k < a.hcbs->size(); ++k) {
                const auto& spec = (*a.hcbs)[k].spec;
                out << "hcb " << spec.packet << " " << spec.lo << " " << spec.hi
                    << "\n";
                out << "active " << spec.active_clauses.size();
                for (auto id : spec.active_clauses) out << " " << id;
                out << "\n";
                out << "passthrough " << spec.passthrough_clauses.size();
                for (auto id : spec.passthrough_clauses) out << " " << id;
                out << "\n";
                out << "chain " << spec.has_chain_input.size();
                for (bool b : spec.has_chain_input) out << " " << (b ? 1 : 0);
                out << "\n";

                const std::string text = hcb_verilog((*a.hcbs)[k], k, a.strash);
                std::ofstream v(tmp / hcb_file_name(k), std::ios::binary);
                v << text;
                if (!v) throw std::runtime_error("RTL write failed");
                out << crc_line(hcb_file_name(k), text);
            }
            out << "end\n";
            if (!out) throw std::runtime_error("manifest write failed");
        },
        warn);
}

// ---------------------------------------------------------------------------
// Disk tier: lint reports
// ---------------------------------------------------------------------------

std::optional<LintArtifact> ArtifactStore::load_disk(const char* stage_name,
                                                     std::uint64_t key,
                                                     const WarnFn& warn,
                                                     LintArtifact*) const {
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    const auto manifest = read_manifest(entry / kManifestName, stage_name, key, warn);
    if (!manifest) return std::nullopt;
    if (!verify_payload_crcs(*manifest, entry, warn)) return std::nullopt;

    LintArtifact a;
    try {
        a.report = lint::lint_report_from_json(
            util::Json::parse(util::read_file(entry / "report.json")));
    } catch (const std::exception& e) {
        warn_at(warn, "artifact store: unusable lint report in " +
                          entry.string() + " (" + e.what() + "); recomputing");
        return std::nullopt;
    }
    return a;
}

void ArtifactStore::save_disk(const char* stage_name, std::uint64_t key,
                              const LintArtifact& a, const WarnFn& warn) const {
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    write_entry(
        entry,
        [&](const fs::path& tmp) {
            const std::string text =
                lint::lint_report_to_json(a.report).dump(2) + "\n";
            std::ofstream rj(tmp / "report.json", std::ios::binary);
            rj << text;
            if (!rj) throw std::runtime_error("report write failed");
            std::ofstream out(tmp / kManifestName);
            out << "MATADOR-ARTIFACT v" << kManifestVersion << "\n";
            out << "stage " << stage_name << "\n";
            out << "key " << key_hex(key) << "\n";
            out << "findings " << a.report.findings.size() << "\n";
            out << crc_line("report.json", text);
            out << "end\n";
            if (!out) throw std::runtime_error("manifest write failed");
        },
        warn);
}

// ---------------------------------------------------------------------------
// Disk tier: proof reports
// ---------------------------------------------------------------------------

std::optional<ProofArtifact> ArtifactStore::load_disk(const char* stage_name,
                                                      std::uint64_t key,
                                                      const WarnFn& warn,
                                                      ProofArtifact*) const {
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    const auto manifest = read_manifest(entry / kManifestName, stage_name, key, warn);
    if (!manifest) return std::nullopt;
    if (!verify_payload_crcs(*manifest, entry, warn)) return std::nullopt;

    ProofArtifact a;
    try {
        a.report = sat::prove_report_from_json(
            util::Json::parse(util::read_file(entry / "report.json")));
    } catch (const std::exception& e) {
        warn_at(warn, "artifact store: unusable proof report in " +
                          entry.string() + " (" + e.what() + "); recomputing");
        return std::nullopt;
    }
    return a;
}

void ArtifactStore::save_disk(const char* stage_name, std::uint64_t key,
                              const ProofArtifact& a, const WarnFn& warn) const {
    const fs::path entry = fs::path(dir_) / stage_name / key_hex(key);
    write_entry(
        entry,
        [&](const fs::path& tmp) {
            const std::string text =
                sat::prove_report_to_json(a.report).dump(2) + "\n";
            std::ofstream rj(tmp / "report.json", std::ios::binary);
            rj << text;
            if (!rj) throw std::runtime_error("report write failed");
            std::ofstream out(tmp / kManifestName);
            out << "MATADOR-ARTIFACT v" << kManifestVersion << "\n";
            out << "stage " << stage_name << "\n";
            out << "key " << key_hex(key) << "\n";
            out << "equivalent " << (a.report.equivalent ? 1 : 0) << "\n";
            out << crc_line("report.json", text);
            out << "end\n";
            if (!out) throw std::runtime_error("manifest write failed");
        },
        warn);
}

// ---------------------------------------------------------------------------
// Stats and maintenance
// ---------------------------------------------------------------------------

std::size_t ArtifactStore::count_disk_entries(const char* stage_name) const {
    if (!persistent()) return 0;
    const fs::path stage_dir = fs::path(dir_) / stage_name;
    std::error_code ec;
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(stage_dir, ec))
        if (e.is_directory() && is_key_dir_name(e.path().filename().string()) &&
            fs::exists(e.path() / kManifestName))
            ++n;
    return n;
}

ArtifactStore::Stats ArtifactStore::stats() const {
    Stats s;
    const auto tier = [this](const auto& stage, const char* name) {
        TierStats t;
        t.memory_hits = stage.memory_hits.load();
        t.disk_hits = stage.disk_hits.load();
        t.misses = stage.misses.load();
        {
            std::lock_guard<std::mutex> lock(stage.mu);
            for (const auto& [key, slot] : stage.slots)
                if (slot->computed) ++t.memory_entries;
        }
        t.disk_entries = count_disk_entries(name);
        return t;
    };
    s.train = tier(train_, "train");
    s.generate = tier(generate_, "generate");
    s.lint = tier(lint_, "lint");
    s.proof = tier(proof_, "proof");
    return s;
}

void ArtifactStore::clear_memory() {
    {
        std::lock_guard<std::mutex> lock(train_.mu);
        train_.slots.clear();
    }
    train_.memory_hits = 0;
    train_.disk_hits = 0;
    train_.misses = 0;
    {
        std::lock_guard<std::mutex> lock(generate_.mu);
        generate_.slots.clear();
    }
    generate_.memory_hits = 0;
    generate_.disk_hits = 0;
    generate_.misses = 0;
    {
        std::lock_guard<std::mutex> lock(lint_.mu);
        lint_.slots.clear();
    }
    lint_.memory_hits = 0;
    lint_.disk_hits = 0;
    lint_.misses = 0;
    {
        std::lock_guard<std::mutex> lock(proof_.mu);
        proof_.slots.clear();
    }
    proof_.memory_hits = 0;
    proof_.disk_hits = 0;
    proof_.misses = 0;
}

std::vector<ArtifactStore::DiskEntry> ArtifactStore::list_disk() const {
    std::vector<DiskEntry> entries;
    if (!persistent()) return entries;
    for (const char* stage : {"train", "generate", "lint", "proof"}) {
        const fs::path stage_dir = fs::path(dir_) / stage;
        std::error_code ec;
        std::vector<DiskEntry> stage_entries;
        for (const auto& e : fs::directory_iterator(stage_dir, ec)) {
            if (!e.is_directory()) continue;
            if (!is_key_dir_name(e.path().filename().string())) continue;
            DiskEntry d;
            d.stage = stage;
            d.key_hex = e.path().filename().string();
            std::error_code fec;
            for (const auto& f : fs::directory_iterator(e.path(), fec)) {
                if (!f.is_regular_file()) continue;
                d.files++;
                d.bytes += f.file_size(fec);
            }
            stage_entries.push_back(std::move(d));
        }
        std::sort(stage_entries.begin(), stage_entries.end(),
                  [](const DiskEntry& a, const DiskEntry& b) {
                      return a.key_hex < b.key_hex;
                  });
        entries.insert(entries.end(), stage_entries.begin(), stage_entries.end());
    }
    return entries;
}

std::uintmax_t ArtifactStore::clear_disk() {
    std::uintmax_t bytes = 0;
    for (const auto& e : list_disk()) bytes += e.bytes;
    if (persistent()) {
        std::error_code ec;
        fs::remove_all(fs::path(dir_) / "train", ec);
        fs::remove_all(fs::path(dir_) / "generate", ec);
        fs::remove_all(fs::path(dir_) / "lint", ec);
        fs::remove_all(fs::path(dir_) / "proof", ec);
    }
    return bytes;
}

}  // namespace matador::core
