#include "data/booleanizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace matador::data {

util::BitVector ThresholdBooleanizer::encode(const std::vector<double>& x) const {
    util::BitVector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i] >= threshold_) out.set(i);
    return out;
}

ThermometerBooleanizer::ThermometerBooleanizer(std::size_t levels, double lo, double hi)
    : levels_(levels) {
    if (levels == 0) throw std::invalid_argument("ThermometerBooleanizer: levels == 0");
    if (hi <= lo) throw std::invalid_argument("ThermometerBooleanizer: hi <= lo");
    thresholds_.reserve(levels);
    for (std::size_t k = 0; k < levels; ++k)
        thresholds_.push_back(lo + (hi - lo) * double(k + 1) / double(levels + 1));
}

util::BitVector ThermometerBooleanizer::encode(const std::vector<double>& x) const {
    util::BitVector out(x.size() * levels_);
    for (std::size_t i = 0; i < x.size(); ++i)
        for (std::size_t k = 0; k < levels_; ++k)
            if (x[i] >= thresholds_[k]) out.set(i * levels_ + k);
    return out;
}

void QuantileBooleanizer::fit(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) throw std::invalid_argument("QuantileBooleanizer::fit: no rows");
    const std::size_t f = rows.front().size();
    thresholds_.assign(f, {});

    std::vector<double> column(rows.size());
    for (std::size_t j = 0; j < f; ++j) {
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].size() != f)
                throw std::invalid_argument("QuantileBooleanizer::fit: ragged rows");
            column[i] = rows[i][j];
        }
        std::sort(column.begin(), column.end());
        thresholds_[j].reserve(levels_);
        for (std::size_t k = 0; k < levels_; ++k) {
            const double q = double(k + 1) / double(levels_ + 1);
            const auto idx = std::size_t(q * double(column.size() - 1));
            thresholds_[j].push_back(column[idx]);
        }
    }
}

util::BitVector QuantileBooleanizer::encode(const std::vector<double>& x) const {
    if (!fitted()) throw std::runtime_error("QuantileBooleanizer: encode before fit");
    if (x.size() != thresholds_.size())
        throw std::invalid_argument("QuantileBooleanizer: feature count mismatch");
    util::BitVector out(x.size() * levels_);
    for (std::size_t i = 0; i < x.size(); ++i)
        for (std::size_t k = 0; k < levels_; ++k)
            if (x[i] >= thresholds_[i][k]) out.set(i * levels_ + k);
    return out;
}

}  // namespace matador::data
