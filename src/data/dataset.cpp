#include "data/dataset.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace matador::data {

void Dataset::add(util::BitVector x, std::uint32_t label) {
    if (x.size() != num_features)
        throw std::runtime_error("Dataset::add: feature size mismatch");
    examples.push_back(std::move(x));
    labels.push_back(label);
}

std::vector<std::size_t> Dataset::class_histogram() const {
    std::vector<std::size_t> h(num_classes, 0);
    for (auto l : labels) h.at(l)++;
    return h;
}

void Dataset::validate() const {
    if (examples.size() != labels.size())
        throw std::runtime_error("Dataset: examples/labels size mismatch");
    for (const auto& x : examples)
        if (x.size() != num_features)
            throw std::runtime_error("Dataset: example with wrong feature count");
    for (auto l : labels)
        if (l >= num_classes) throw std::runtime_error("Dataset: label out of range");
}

void shuffle(Dataset& ds, std::uint64_t seed) {
    util::Xoshiro256ss rng(seed);
    for (std::size_t i = ds.size(); i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(ds.examples[i - 1], ds.examples[j]);
        std::swap(ds.labels[i - 1], ds.labels[j]);
    }
}

Split train_test_split(const Dataset& ds, double train_fraction, std::uint64_t seed) {
    Dataset copy = ds;
    shuffle(copy, seed);
    const auto n_train = std::size_t(double(copy.size()) * train_fraction);

    Split s;
    s.train.name = ds.name + "-train";
    s.test.name = ds.name + "-test";
    for (Dataset* part : {&s.train, &s.test}) {
        part->num_features = ds.num_features;
        part->num_classes = ds.num_classes;
    }
    for (std::size_t i = 0; i < copy.size(); ++i) {
        auto& part = i < n_train ? s.train : s.test;
        part.examples.push_back(std::move(copy.examples[i]));
        part.labels.push_back(copy.labels[i]);
    }
    return s;
}

}  // namespace matador::data
