// Synthetic dataset generators.
//
// The paper evaluates on MNIST, KMNIST, FMNIST, CIFAR-2 and a 6-keyword
// Google-Speech-Commands subset (KWS6).  This environment has no network or
// dataset files, so we substitute deterministic generators that preserve the
// properties the accelerator flow actually depends on:
//   * exact input dimensionality (784 / 784 / 784 / 1024 / 377 bits),
//   * exact class counts (10 / 10 / 10 / 2 / 6),
//   * class structure learnable by a Tsetlin Machine at accuracies in the
//     paper's regime, with include densities that reproduce the sparsity
//     and sharing behaviour of Section II / Fig. 3.
//
// The image-like generator draws one structured prototype per class
// (blob-shaped active regions on a W x H grid, mimicking thresholded
// digits/garments) and emits samples as prototype XOR per-pixel noise, with
// a configurable fraction of "ambiguous" pixels that are independently
// random (shared across classes - this produces the cross-class expression
// sharing the paper observes).  The audio-like generator mimics booleanized
// MFCC bands: per-class band-activation templates over time frames.
//
// Absolute accuracy numbers are NOT comparable with the paper (different
// data); EXPERIMENTS.md flags this.  Shapes (who wins, resource ordering,
// latency arithmetic) do not depend on the raw pixels.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace matador::data {

/// Parameters for the structured image-like generator.
struct ImageLikeParams {
    std::size_t width = 28;           ///< grid width  (bits = width*height)
    std::size_t height = 28;          ///< grid height
    std::size_t num_classes = 10;     ///< prototypes to draw
    std::size_t examples_per_class = 300;
    double fill_density = 0.22;       ///< fraction of active pixels per prototype
    double noise = 0.08;              ///< per-pixel flip probability
    double ambiguous_fraction = 0.25; ///< pixels that are pure noise in all classes
    std::size_t blobs = 4;            ///< blob count per prototype (structure)
    /// Per-sample random translation in pixels (both axes, uniform in
    /// [-max_shift, +max_shift]).  Non-convolutional TMs and MLPs handle
    /// translation poorly, which brings accuracies into the realistic
    /// 80-95% band of the paper's Table I.
    std::size_t max_shift = 0;
    std::uint64_t seed = 1;
};

/// Generate a structured image-like dataset (see ImageLikeParams).
Dataset make_image_like(const ImageLikeParams& p);

/// Parameters for the audio-like (booleanized MFCC) generator.
struct AudioLikeParams {
    std::size_t bands = 13;          ///< cepstral bands
    std::size_t frames = 29;         ///< time frames (bands*frames = bits)
    std::size_t num_classes = 6;     ///< keywords
    std::size_t examples_per_class = 400;
    double noise = 0.10;             ///< per-bit flip probability
    double template_density = 0.35;  ///< active cells per keyword template
    std::size_t max_frame_shift = 0; ///< per-sample time misalignment (frames)
    std::uint64_t seed = 2;
};

/// Generate an audio-like dataset of bands*frames bits.
/// With the defaults this gives 13*29 = 377 bits and 6 classes - the same
/// shape as the paper's KWS6 input layer.
Dataset make_audio_like(const AudioLikeParams& p);

/// The classic 2D Noisy-XOR benchmark used by prior TM FPGA work
/// (Wheeldon et al.).  Two relevant bits x0, x1 with label = x0 XOR x1
/// flipped with probability `label_noise`; remaining bits are distractors.
Dataset make_noisy_xor(std::size_t num_examples, std::size_t distractor_bits,
                       double label_noise, std::uint64_t seed);

/// A 3-class, 4-feature Iris-like dataset: Gaussian clusters booleanized
/// with a thermometer code of `levels` bits per feature
/// (16 bits total with levels = 4).
Dataset make_iris_like(std::size_t examples_per_class, std::size_t levels,
                       std::uint64_t seed);

// -- Named surrogates for the paper's five evaluation datasets -------------

/// 784-bit, 10-class MNIST-like surrogate (28x28 grid).
Dataset make_mnist_like(std::size_t examples_per_class = 300, std::uint64_t seed = 11);
/// 784-bit, 10-class KMNIST-like surrogate (harder: more noise/overlap).
Dataset make_kmnist_like(std::size_t examples_per_class = 300, std::uint64_t seed = 12);
/// 784-bit, 10-class FMNIST-like surrogate (denser prototypes).
Dataset make_fmnist_like(std::size_t examples_per_class = 300, std::uint64_t seed = 13);
/// 1024-bit, 2-class CIFAR-2-like surrogate (32x32 grid, animals vs vehicles).
Dataset make_cifar2_like(std::size_t examples_per_class = 1000, std::uint64_t seed = 14);
/// 377-bit, 6-class KWS6-like surrogate (13 bands x 29 frames).
Dataset make_kws6_like(std::size_t examples_per_class = 400, std::uint64_t seed = 15);

}  // namespace matador::data
