#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "data/booleanizer.hpp"
#include "util/rng.hpp"

namespace matador::data {

namespace {

using util::BitVector;
using util::Xoshiro256ss;

/// Draw a structured prototype on a width x height grid: `blobs` roughly
/// circular active regions whose total area approximates `fill_density`,
/// restricted to pixels not in `ambiguous`.
BitVector draw_prototype(std::size_t width, std::size_t height, std::size_t blobs,
                         double fill_density, const BitVector& ambiguous,
                         Xoshiro256ss& rng) {
    const std::size_t bits = width * height;
    BitVector proto(bits);
    const double target = fill_density * double(bits);
    // Area per blob => radius; blobs are jittered ellipses.
    const double area_per_blob = target / double(blobs);
    const double base_r = std::sqrt(area_per_blob / 3.141592653589793);

    for (std::size_t b = 0; b < blobs; ++b) {
        const double cx = 2.0 + rng.uniform() * (double(width) - 4.0);
        const double cy = 2.0 + rng.uniform() * (double(height) - 4.0);
        const double rx = base_r * (0.7 + 0.6 * rng.uniform());
        const double ry = base_r * (0.7 + 0.6 * rng.uniform());
        for (std::size_t y = 0; y < height; ++y) {
            for (std::size_t x = 0; x < width; ++x) {
                const double dx = (double(x) - cx) / rx;
                const double dy = (double(y) - cy) / ry;
                if (dx * dx + dy * dy <= 1.0) {
                    const std::size_t i = y * width + x;
                    if (!ambiguous.get(i)) proto.set(i);
                }
            }
        }
    }
    return proto;
}

/// Flip each bit of `x` with probability `p` (restricted to `mask` if given).
void add_noise(BitVector& x, double p, Xoshiro256ss& rng) {
    for (std::size_t i = 0; i < x.size(); ++i)
        if (rng.bernoulli(p)) x.set(i, !x.get(i));
}

/// Translate a width x height image by (dx, dy), clipping at the borders.
BitVector shift_image(const BitVector& src, std::size_t width, std::size_t height,
                      int dx, int dy) {
    BitVector out(src.size());
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            if (!src.get(y * width + x)) continue;
            const long nx = long(x) + dx, ny = long(y) + dy;
            if (nx >= 0 && nx < long(width) && ny >= 0 && ny < long(height))
                out.set(std::size_t(ny) * width + std::size_t(nx));
        }
    }
    return out;
}

}  // namespace

Dataset make_image_like(const ImageLikeParams& p) {
    Xoshiro256ss rng(p.seed);
    const std::size_t bits = p.width * p.height;

    Dataset ds;
    ds.name = "image-like-" + std::to_string(bits) + "b" + std::to_string(p.num_classes) + "c";
    ds.num_features = bits;
    ds.num_classes = p.num_classes;

    // Ambiguous pixels: independently random in every sample, of every class.
    BitVector ambiguous(bits);
    for (std::size_t i = 0; i < bits; ++i)
        if (rng.bernoulli(p.ambiguous_fraction)) ambiguous.set(i);

    std::vector<BitVector> protos;
    protos.reserve(p.num_classes);
    for (std::size_t c = 0; c < p.num_classes; ++c)
        protos.push_back(
            draw_prototype(p.width, p.height, p.blobs, p.fill_density, ambiguous, rng));

    for (std::size_t c = 0; c < p.num_classes; ++c) {
        for (std::size_t e = 0; e < p.examples_per_class; ++e) {
            BitVector x = protos[c];
            if (p.max_shift > 0) {
                const int span = 2 * int(p.max_shift) + 1;
                const int dx = int(rng.below(std::uint64_t(span))) - int(p.max_shift);
                const int dy = int(rng.below(std::uint64_t(span))) - int(p.max_shift);
                x = shift_image(x, p.width, p.height, dx, dy);
            }
            add_noise(x, p.noise, rng);
            // Ambiguous pixels: uniform random, identical process across classes.
            for (std::size_t i = ambiguous.find_first(); i < bits;
                 i = ambiguous.find_next(i))
                x.set(i, rng.bernoulli(0.5));
            ds.add(std::move(x), std::uint32_t(c));
        }
    }
    shuffle(ds, p.seed ^ 0x5555aaaa5555aaaaull);
    return ds;
}

Dataset make_audio_like(const AudioLikeParams& p) {
    Xoshiro256ss rng(p.seed);
    const std::size_t bits = p.bands * p.frames;

    Dataset ds;
    ds.name = "audio-like-" + std::to_string(bits) + "b" + std::to_string(p.num_classes) + "c";
    ds.num_features = bits;
    ds.num_classes = p.num_classes;

    // Per-keyword template: a smooth trajectory of active bands over frames.
    std::vector<BitVector> templates;
    for (std::size_t c = 0; c < p.num_classes; ++c) {
        BitVector t(bits);
        // Random walk of a band-centre across frames plus random accents.
        double centre = rng.uniform() * double(p.bands);
        const double span = 1.0 + rng.uniform() * double(p.bands) * p.template_density;
        for (std::size_t f = 0; f < p.frames; ++f) {
            centre += (rng.uniform() - 0.5) * 2.0;
            centre = std::clamp(centre, 0.0, double(p.bands - 1));
            for (std::size_t b = 0; b < p.bands; ++b)
                if (std::abs(double(b) - centre) <= span * 0.5) t.set(f * p.bands + b);
        }
        templates.push_back(std::move(t));
    }

    for (std::size_t c = 0; c < p.num_classes; ++c) {
        for (std::size_t e = 0; e < p.examples_per_class; ++e) {
            BitVector x = templates[c];
            if (p.max_frame_shift > 0) {
                const int span = 2 * int(p.max_frame_shift) + 1;
                const int df =
                    int(rng.below(std::uint64_t(span))) - int(p.max_frame_shift);
                // Shift whole frames in time; bands stay aligned.
                x = shift_image(x, p.bands, p.frames, 0, df);
            }
            add_noise(x, p.noise, rng);
            ds.add(std::move(x), std::uint32_t(c));
        }
    }
    shuffle(ds, p.seed ^ 0x123456789abcdef0ull);
    return ds;
}

Dataset make_noisy_xor(std::size_t num_examples, std::size_t distractor_bits,
                       double label_noise, std::uint64_t seed) {
    Xoshiro256ss rng(seed);
    Dataset ds;
    ds.name = "noisy-xor";
    ds.num_features = 2 + distractor_bits;
    ds.num_classes = 2;
    for (std::size_t e = 0; e < num_examples; ++e) {
        BitVector x(ds.num_features);
        const bool a = rng.bernoulli(0.5), b = rng.bernoulli(0.5);
        x.set(0, a);
        x.set(1, b);
        for (std::size_t i = 2; i < ds.num_features; ++i) x.set(i, rng.bernoulli(0.5));
        bool label = a != b;
        if (rng.bernoulli(label_noise)) label = !label;
        ds.add(std::move(x), std::uint32_t(label));
    }
    return ds;
}

Dataset make_iris_like(std::size_t examples_per_class, std::size_t levels,
                       std::uint64_t seed) {
    Xoshiro256ss rng(seed);
    // Class means loosely modelled on the real Iris measurements (cm).
    const double means[3][4] = {
        {5.0, 3.4, 1.5, 0.25},  // setosa-like
        {5.9, 2.8, 4.3, 1.3},   // versicolor-like
        {6.6, 3.0, 5.5, 2.0},   // virginica-like
    };
    const double sigma[4] = {0.35, 0.30, 0.35, 0.20};

    ThermometerBooleanizer booleanizer(levels, 0.0, 8.0);
    Dataset ds;
    ds.name = "iris-like";
    ds.num_features = booleanizer.output_bits(4);
    ds.num_classes = 3;

    auto gauss = [&rng]() {
        // Box-Muller.
        const double u1 = std::max(rng.uniform(), 1e-12), u2 = rng.uniform();
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
    };

    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t e = 0; e < examples_per_class; ++e) {
            std::vector<double> x(4);
            for (std::size_t f = 0; f < 4; ++f) x[f] = means[c][f] + sigma[f] * gauss();
            ds.add(booleanizer.encode(x), std::uint32_t(c));
        }
    }
    shuffle(ds, seed ^ 0xfeedfacecafebeefull);
    return ds;
}

Dataset make_mnist_like(std::size_t examples_per_class, std::uint64_t seed) {
    ImageLikeParams p;
    p.width = 28;
    p.height = 28;
    p.num_classes = 10;
    p.examples_per_class = examples_per_class;
    p.fill_density = 0.20;
    p.noise = 0.14;
    p.ambiguous_fraction = 0.35;
    p.blobs = 4;
    p.max_shift = 2;
    p.seed = seed;
    Dataset ds = make_image_like(p);
    ds.name = "mnist-like";
    return ds;
}

Dataset make_kmnist_like(std::size_t examples_per_class, std::uint64_t seed) {
    ImageLikeParams p;
    p.width = 28;
    p.height = 28;
    p.num_classes = 10;
    p.examples_per_class = examples_per_class;
    p.fill_density = 0.26;
    p.noise = 0.18;        // harder than MNIST, as in the paper's accuracy gap
    p.ambiguous_fraction = 0.40;
    p.blobs = 6;
    p.max_shift = 3;
    p.seed = seed;
    Dataset ds = make_image_like(p);
    ds.name = "kmnist-like";
    return ds;
}

Dataset make_fmnist_like(std::size_t examples_per_class, std::uint64_t seed) {
    ImageLikeParams p;
    p.width = 28;
    p.height = 28;
    p.num_classes = 10;
    p.examples_per_class = examples_per_class;
    p.fill_density = 0.34;  // garments fill more of the frame than digits
    p.noise = 0.17;
    p.ambiguous_fraction = 0.38;
    p.max_shift = 3;
    p.blobs = 3;
    p.seed = seed;
    Dataset ds = make_image_like(p);
    ds.name = "fmnist-like";
    return ds;
}

Dataset make_cifar2_like(std::size_t examples_per_class, std::uint64_t seed) {
    ImageLikeParams p;
    p.width = 32;
    p.height = 32;
    p.num_classes = 2;
    p.examples_per_class = examples_per_class;
    p.fill_density = 0.30;
    p.noise = 0.26;        // natural images booleanize noisily
    p.ambiguous_fraction = 0.50;
    p.max_shift = 5;
    p.blobs = 5;
    p.seed = seed;
    Dataset ds = make_image_like(p);
    ds.name = "cifar2-like";
    return ds;
}

Dataset make_kws6_like(std::size_t examples_per_class, std::uint64_t seed) {
    AudioLikeParams p;
    p.bands = 13;
    p.frames = 29;  // 13*29 = 377 input bits, as in the paper's KWS6 model
    p.num_classes = 6;
    p.examples_per_class = examples_per_class;
    p.noise = 0.22;
    p.template_density = 0.30;
    p.max_frame_shift = 4;
    p.seed = seed;
    Dataset ds = make_audio_like(p);
    ds.name = "kws6-like";
    return ds;
}

}  // namespace matador::data
