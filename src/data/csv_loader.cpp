#include "data/csv_loader.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace matador::data {

namespace {

double parse_number(std::string_view field, std::size_t line_no) {
    const auto trimmed = util::trim(field);
    double value = 0.0;
    const auto* begin = trimmed.data();
    const auto* end = trimmed.data() + trimmed.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        throw std::runtime_error("csv line " + std::to_string(line_no) +
                                 ": not a number: '" + std::string(trimmed) + "'");
    return value;
}

}  // namespace

RawDataset load_csv(std::istream& in, const CsvOptions& options) {
    RawDataset raw;
    std::string line;
    std::size_t line_no = 0;

    if (options.has_header && std::getline(in, line)) ++line_no;

    while (std::getline(in, line)) {
        ++line_no;
        if (util::trim(line).empty()) continue;
        const auto fields = util::split(line, options.delimiter);
        if (fields.size() < 2)
            throw std::runtime_error("csv line " + std::to_string(line_no) +
                                     ": need at least a label and one feature");

        const std::size_t label_idx =
            options.label_column < 0 ? fields.size() - 1
                                     : std::size_t(options.label_column);
        if (label_idx >= fields.size())
            throw std::runtime_error("csv line " + std::to_string(line_no) +
                                     ": label column out of range");

        const double label_value = parse_number(fields[label_idx], line_no);
        if (label_value < 0 || label_value != double(std::uint32_t(label_value)))
            throw std::runtime_error("csv line " + std::to_string(line_no) +
                                     ": label must be a non-negative integer");

        std::vector<double> row;
        row.reserve(fields.size() - 1);
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i == label_idx) continue;
            row.push_back(parse_number(fields[i], line_no));
        }

        if (raw.rows.empty()) {
            raw.num_features = row.size();
        } else if (row.size() != raw.num_features) {
            throw std::runtime_error("csv line " + std::to_string(line_no) +
                                     ": expected " + std::to_string(raw.num_features) +
                                     " features, got " + std::to_string(row.size()));
        }
        raw.rows.push_back(std::move(row));
        raw.labels.push_back(std::uint32_t(label_value));
    }
    return raw;
}

RawDataset load_csv_file(const std::string& path, const CsvOptions& options) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_csv_file: cannot open " + path);
    return load_csv(in, options);
}

Dataset booleanize(const RawDataset& raw, const Booleanizer& booleanizer,
                   const std::string& name, std::size_t num_classes) {
    Dataset ds;
    ds.name = name;
    ds.num_features = booleanizer.output_bits(raw.num_features);
    if (num_classes == 0) {
        for (auto l : raw.labels) num_classes = std::max<std::size_t>(num_classes, l + 1);
    }
    ds.num_classes = num_classes;
    for (std::size_t i = 0; i < raw.size(); ++i)
        ds.add(booleanizer.encode(raw.rows[i]), raw.labels[i]);
    ds.validate();
    return ds;
}

}  // namespace matador::data
