// Boolean classification dataset container + split/shuffle utilities.
//
// MATADOR consumes *booleanized* data: every datapoint is a BitVector of
// `num_features` bits plus an integer label.  Raw (real-valued) data enters
// through the booleanizers in booleanizer.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace matador::data {

/// A booleanized, labelled classification dataset.
struct Dataset {
    std::string name;                       ///< human-readable identifier
    std::size_t num_features = 0;           ///< bits per datapoint
    std::size_t num_classes = 0;            ///< label range is [0, num_classes)
    std::vector<util::BitVector> examples;  ///< each of size num_features
    std::vector<std::uint32_t> labels;      ///< parallel to examples

    std::size_t size() const { return examples.size(); }

    /// Append one example (x.size() must equal num_features).
    void add(util::BitVector x, std::uint32_t label);

    /// Per-class example counts.
    std::vector<std::size_t> class_histogram() const;

    /// Throws std::runtime_error if any invariant is broken
    /// (feature-size mismatch, label out of range, size mismatch).
    void validate() const;
};

/// Train/test split of a dataset.
struct Split {
    Dataset train;
    Dataset test;
};

/// Shuffle examples and labels together with the given seed.
void shuffle(Dataset& ds, std::uint64_t seed);

/// Split into train/test with `train_fraction` of examples in train
/// (after an internal shuffle with `seed`).
Split train_test_split(const Dataset& ds, double train_fraction, std::uint64_t seed);

}  // namespace matador::data
