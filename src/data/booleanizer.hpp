// Booleanizers: real-valued feature vectors -> boolean feature vectors.
//
// The Tsetlin Machine operates on boolean literals, so any real-valued
// dataset must first be booleanized.  MATADOR's GUI offers the same three
// schemes implemented here:
//   * ThresholdBooleanizer   - one bit per feature, x >= threshold.
//   * ThermometerBooleanizer - `levels` bits per feature, unary coding
//                              against evenly spaced thresholds.
//   * QuantileBooleanizer    - `levels` bits per feature, thresholds placed
//                              at empirical quantiles (fit on data).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvector.hpp"

namespace matador::data {

/// Interface for real->boolean feature encoders.
class Booleanizer {
public:
    virtual ~Booleanizer() = default;

    /// Number of output bits produced per input feature vector of
    /// `num_inputs` features.
    virtual std::size_t output_bits(std::size_t num_inputs) const = 0;

    /// Encode one feature vector.
    virtual util::BitVector encode(const std::vector<double>& x) const = 0;
};

/// One bit per feature: bit i = (x[i] >= threshold).
class ThresholdBooleanizer final : public Booleanizer {
public:
    explicit ThresholdBooleanizer(double threshold) : threshold_(threshold) {}

    std::size_t output_bits(std::size_t num_inputs) const override { return num_inputs; }
    util::BitVector encode(const std::vector<double>& x) const override;

    double threshold() const { return threshold_; }

private:
    double threshold_;
};

/// Unary (thermometer) coding: `levels` bits per feature against evenly
/// spaced thresholds in [lo, hi]; bit k = (x >= lo + (k+1)*(hi-lo)/(levels+1)).
class ThermometerBooleanizer final : public Booleanizer {
public:
    ThermometerBooleanizer(std::size_t levels, double lo, double hi);

    std::size_t output_bits(std::size_t num_inputs) const override {
        return num_inputs * levels_;
    }
    util::BitVector encode(const std::vector<double>& x) const override;

    std::size_t levels() const { return levels_; }
    const std::vector<double>& thresholds() const { return thresholds_; }

private:
    std::size_t levels_;
    std::vector<double> thresholds_;
};

/// Thermometer coding with per-feature thresholds at empirical quantiles.
/// Must be `fit` on training data before `encode`.
class QuantileBooleanizer final : public Booleanizer {
public:
    explicit QuantileBooleanizer(std::size_t levels) : levels_(levels) {}

    /// Compute per-feature quantile thresholds from `rows` (each of equal size).
    void fit(const std::vector<std::vector<double>>& rows);

    bool fitted() const { return !thresholds_.empty(); }

    std::size_t output_bits(std::size_t num_inputs) const override {
        return num_inputs * levels_;
    }
    util::BitVector encode(const std::vector<double>& x) const override;

    std::size_t levels() const { return levels_; }
    /// thresholds()[f][k] is the k-th threshold of feature f.
    const std::vector<std::vector<double>>& thresholds() const { return thresholds_; }

private:
    std::size_t levels_;
    std::vector<std::vector<double>> thresholds_;
};

}  // namespace matador::data
