// CSV dataset ingestion: the bridge from real datasets to the flow.
//
// This environment ships no dataset files, so the benches use synthetic
// surrogates - but a user with the real MNIST/KWS CSVs feeds them through
// here: parse rows of real-valued features + an integer label, then
// booleanize with any Booleanizer.  Matches the CSV layout of the common
// "mnist_train.csv" distributions (label first, 784 pixel columns).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/booleanizer.hpp"
#include "data/dataset.hpp"

namespace matador::data {

/// CSV parsing options.
struct CsvOptions {
    char delimiter = ',';
    bool has_header = false;
    /// Index of the label column; -1 = last column.
    int label_column = 0;
};

/// Real-valued rows before booleanization.
struct RawDataset {
    std::size_t num_features = 0;
    std::vector<std::vector<double>> rows;   ///< feature values
    std::vector<std::uint32_t> labels;

    std::size_t size() const { return rows.size(); }
};

/// Parse CSV text.  Throws std::runtime_error with the offending line
/// number on ragged rows, non-numeric fields or out-of-range labels.
RawDataset load_csv(std::istream& in, const CsvOptions& options = {});
RawDataset load_csv_file(const std::string& path, const CsvOptions& options = {});

/// Booleanize a raw dataset.  For a QuantileBooleanizer, call fit() on the
/// training rows first.  `num_classes` of 0 derives it from max(label)+1.
Dataset booleanize(const RawDataset& raw, const Booleanizer& booleanizer,
                   const std::string& name, std::size_t num_classes = 0);

}  // namespace matador::data
